"""The execution-backend registry — one place that knows every engine.

Five engines run ``Simulation``-shaped workloads today:

* ``object`` — the per-interaction reference engine
  (:class:`repro.sim.simulation.Simulation`): state objects, Python
  dispatch, observers, fault injection.  Runs every protocol.
* ``array``  — the vectorized per-agent engine
  (:class:`repro.sim.array_backend.ArraySimulation`): ``int64`` state
  codes per agent, dense transition tables, block pair application.
  Finite-state protocols only.
* ``counts`` — the count-vector engine
  (:class:`repro.sim.counts_backend.CountsSimulation`): the whole
  population is an ``S``-length count vector; interactions are sampled in
  law-exact collision-free runs and applied as aggregate count deltas.
  Finite-state protocols only, and the engine of choice once only
  aggregate statistics matter (n ≥ 10⁶ stabilization curves).
* ``batch`` — the trial-vectorized counts engine
  (:class:`repro.sim.batch_backend.BatchCountsEngine`): ``T`` whole
  trials as one ``(T, S)`` counts matrix, advanced in lockstep — one
  collision-free-run draw and one table gather per step across the
  batch.  Finite-state protocols only; the engine of choice when a sweep
  cell or a ``run_trials`` call runs many trials of one small-``S``
  protocol.
* ``batch-jit`` — the batch engine with its lockstep step compiled
  (:class:`repro.sim.kernels.JitBatchCountsEngine`): the same ``(T, S)``
  matrix and law, stepped by numba-jitted kernels on counter-based
  per-row streams — law-exact vs ``batch``, not bit-exact (stream
  interleaving differs).  Requires the optional ``[jit]`` extra;
  construction without numba raises a pointed install hint.

Every dispatch site in the repository — :func:`make_simulation`,
:func:`repro.sim.simulation.run_until`, :func:`repro.sim.trials
.run_trials`, :class:`repro.sim.sweep.GridSpec`, the ``repro sweep
--backend`` CLI choices — derives from this registry; none of them name a
backend in an ``if``/``elif`` chain.  Adding an engine is therefore one
new module that calls :func:`register_backend` (plus its registration
line below), and every entry point picks it up — the jitted leg below
is exactly that: a factory, a ``trial_runner`` that reuses
:func:`~repro.sim.batch_backend.run_trial_batch` with a different
engine class, and ``batch_cells=True``; zero name conditionals anywhere.

**The registry contract.**  A :class:`Backend` bundles:

* ``name`` — the string users pass as ``backend=`` / ``--backend``;
* ``factory(protocol, *, init, n, seed)`` — builds a simulation exposing
  the common engine surface (``run`` / ``run_batch`` / ``run_until`` /
  ``predicate_holds`` / ``apply_fault`` / ``instrument_steps`` /
  ``metrics`` / ``config`` / ``n``).  ``init`` is an :class:`~repro.sim.initial_state.InitialState`
  (or ``None`` for a clean ``n``-agent start); the factory asks it for
  the engine's native representation (``to_config`` / ``to_codes`` /
  ``to_counts``), so one value describes the start on every backend and
  adversaries no longer need to know which form an engine prefers;
* ``native_form`` — which representation the engine consumes natively
  (``"config"``, ``"codes"`` or ``"counts"``): registry metadata for
  docs, ``--help`` and schema-compatibility checks (nothing dispatches
  on it);
* ``supports(protocol)`` — ``None`` when the engine can run the protocol,
  else a human-readable reason (used by :class:`~repro.sim.sweep
  .GridSpec` validation and by callers that want to fail before spawning
  workers).  ``supports`` is a cheap *capability* check — engines may
  still raise at construction time for resource-level problems it cannot
  see (e.g. a transition table that only blows the size cap at the
  sweep's largest ``n``);
* ``trial_runner`` — optional batch capability: a callable executing a
  whole list of :class:`~repro.sim.parallel.TrialSpec` work items as one
  native batch (``run_trials`` routes through it instead of the
  per-trial process pool);
* ``batch_cells`` — ``True`` when the engine runs whole sweep cells as
  one batch through the batch-driver surface (``run_rows_until`` /
  ``measure_rows_availability``; see :mod:`repro.sim.batch_backend`);
* ``description`` — one line for ``--help`` and error messages.

**Resolution happens once.**  :func:`resolve_backend` applies the
``None`` → ``$REPRO_BENCH_BACKEND`` → ``object`` defaulting rule and is
called once, at the outermost entry point (``run_trials``, the sweep
CLI).  Everything downstream carries the resolved name and uses
:func:`get_backend` — a pure dictionary lookup that never consults the
environment — so worker processes can never disagree with their parent
about which engine runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.sim.initial_state import (
    InitialState,
    reject_positional,
    reject_removed_kwargs,
    require_init,
)

#: Environment variable naming the default backend (see resolve_backend).
BACKEND_ENV = "REPRO_BENCH_BACKEND"

#: Canonical backend names.  These are ordinary registry keys — nothing
#: dispatches on them — kept as constants so call sites that *pin* an
#: engine (e.g. the object-only ``tradeoff`` CLI command) spell it
#: consistently.
BACKEND_OBJECT = "object"
BACKEND_ARRAY = "array"
BACKEND_COUNTS = "counts"
BACKEND_BATCH = "batch"
BACKEND_BATCH_JIT = "batch-jit"

#: The engine used when neither the caller nor the environment names one.
DEFAULT_BACKEND = BACKEND_OBJECT

#: The three native configuration representations (``Backend.native_form``).
NATIVE_CONFIG = "config"
NATIVE_CODES = "codes"
NATIVE_COUNTS = "counts"

#: The canonical engine surface: every member a registered factory's
#: simulation object must expose (methods or attributes).  This is the
#: single machine-readable description of the backend contract — the
#: static contract checker (:mod:`repro.lint`, rule L002) constructs each
#: registered engine and verifies the complete surface against this
#: tuple, so a new registration (the planned numba/CuPy leg included)
#: inherits the gate without touching the linter.
ENGINE_SURFACE: tuple[str, ...] = (
    "run",
    "run_batch",
    "run_until",
    "predicate_holds",
    "apply_fault",
    "instrument_steps",
    "metrics",
    "config",
    "n",
)

#: Factory signature: ``factory(protocol, init=, n=, seed=)``.
SimulationFactory = Callable[..., Any]

#: Capability check: ``None`` = supported, else the reason it is not.
SupportsCheck = Callable[[PopulationProtocol], Optional[str]]


@dataclass(frozen=True)
class Backend:
    """One registered execution engine (see the module docstring)."""

    name: str
    factory: SimulationFactory
    supports: SupportsCheck
    description: str = ""
    #: The representation the engine consumes natively (registry metadata).
    native_form: str = NATIVE_CONFIG
    #: Optional: run a whole list of TrialSpecs as one native batch.
    trial_runner: Optional[Callable[[Sequence[Any]], list]] = None
    #: True when the engine runs whole sweep cells through the batch surface.
    batch_cells: bool = False

    def require(self, protocol: PopulationProtocol) -> None:
        """Raise ``ValueError`` unless this engine can run ``protocol``."""
        reason = self.supports(protocol)
        if reason is not None:
            raise ValueError(
                f"protocol '{protocol.name}' cannot run on the "
                f"'{self.name}' backend: {reason}"
            )


#: Name → Backend, in registration order (object first, so iteration and
#: therefore CLI choices list the default engine first).
_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Add an engine to the registry (the one-file-change extension point).

    Registering a name twice is an error unless ``replace=True`` —
    accidental shadowing of a built-in engine should be loud.
    """
    # A simple identifier, with dashes allowed as word separators
    # ("batch-jit"): names double as CLI choices and registry keys.
    if not backend.name or not backend.name.replace("-", "_").isidentifier():
        raise ValueError(f"backend name must be a simple identifier, got {backend.name!r}")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend '{backend.name}' is already registered")
    if backend.native_form not in (NATIVE_CONFIG, NATIVE_CODES, NATIVE_COUNTS):
        raise ValueError(
            f"backend native_form must be one of "
            f"{NATIVE_CONFIG!r}/{NATIVE_CODES!r}/{NATIVE_COUNTS!r}, "
            f"got {backend.native_form!r}"
        )
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """All registered engine names, default engine first."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Pure lookup of a *resolved* backend name (never reads the env)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        # Sorted, not registration order: the message is deterministic
        # however (and in whatever order) engines were registered.
        known = ", ".join(sorted(backend_names()))
        raise ValueError(f"unknown backend '{name}' (known: {known})") from None


def resolve_backend(backend: Optional[str] = None, *misused: Any) -> str:
    """Normalize a backend request: ``None`` → ``$REPRO_BENCH_BACKEND`` → default.

    The environment variable gives benchmarks and the CLI a process-wide
    default without threading a flag through every call site; an explicit
    ``backend=`` argument always wins.  Call this once at the entry point
    and pass the resolved name down (:func:`get_backend` from there on).
    Takes exactly the one argument — extra positionals get the pointed
    keyword-only TypeError, not a silent rebind.
    """
    reject_positional("resolve_backend", misused, ("backend",))
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "") or DEFAULT_BACKEND
    return get_backend(backend).name


def supports_backend(protocol: PopulationProtocol, backend: str) -> Optional[str]:
    """``None`` if ``backend`` can run ``protocol``, else the reason not."""
    return get_backend(backend).supports(protocol)


def make_simulation(
    protocol: PopulationProtocol,
    *misused: Any,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    **removed: Any,
) -> Any:
    """Build a simulation on the requested execution backend.

    The initial configuration is ``init`` — an
    :class:`~repro.sim.initial_state.InitialState` — or ``n`` for a clean
    start.  ``backend=None`` resolves the environment default; a
    non-``None`` name is treated as already resolved and looked up
    directly.

    Everything after ``protocol`` is keyword-only, with pointed
    :class:`TypeError`\\ s for both misuse shapes: positional config
    values (``make_simulation(p, init)`` would otherwise bind to nothing
    meaningful) and the removed ``config=``/``codes=``/``counts=``
    keyword triple (whose message names the ``init=`` replacement).
    """
    reject_positional("make_simulation", misused, ("init", "n", "seed", "backend"))
    reject_removed_kwargs("make_simulation", removed)
    init = require_init(init)
    entry = get_backend(backend if backend is not None else resolve_backend(None))
    return entry.factory(protocol, init=init, n=n, seed=seed)


# ---------------------------------------------------------------------------
# Built-in engine registrations
# ---------------------------------------------------------------------------
#
# Factories import their engine modules lazily: the object engine must
# stay importable without numpy, and the vectorized engines already
# import-guard numpy themselves and raise a clear error at use time.


def _object_factory(
    protocol: PopulationProtocol,
    *,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> Any:
    from repro.sim.simulation import Simulation

    config = init.to_config(protocol) if init is not None else None
    return Simulation(protocol, config=config, n=n, seed=seed)


def _object_supports(protocol: PopulationProtocol) -> Optional[str]:
    return None  # the reference engine runs everything


def _finite_state_supports(protocol: PopulationProtocol) -> Optional[str]:
    """Shared capability check of the table-driven engines."""
    from repro.sim.array_backend import MAX_TABLE_ENTRIES

    size = protocol.num_states()
    if size is None:
        return (
            "it has no finite state encoding (num_states() is None); "
            f"use backend='{BACKEND_OBJECT}'"
        )
    if size * size > MAX_TABLE_ENTRIES:
        return (
            f"its {size}x{size} transition table exceeds the "
            f"{MAX_TABLE_ENTRIES}-entry cap"
        )
    return None


def _array_factory(
    protocol: PopulationProtocol,
    *,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> Any:
    from repro.sim.array_backend import ArraySimulation

    codes = init.to_codes(protocol) if init is not None else None
    return ArraySimulation(protocol, n=n, seed=seed, codes=codes)


def _counts_factory(
    protocol: PopulationProtocol,
    *,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> Any:
    from repro.sim.counts_backend import CountsSimulation

    counts = init.to_counts(protocol) if init is not None else None
    return CountsSimulation(protocol, n=n, seed=seed, counts=counts)


def _batch_factory(
    protocol: PopulationProtocol,
    *,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> Any:
    from repro.sim.batch_backend import BatchCountsEngine

    return BatchCountsEngine(protocol, init=init, n=n, seed=seed)


def _batch_trial_runner(specs: Sequence[Any]) -> list:
    from repro.sim.batch_backend import run_trial_batch

    return run_trial_batch(specs)


def _batch_jit_factory(
    protocol: PopulationProtocol,
    *,
    init: Optional[InitialState] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> Any:
    from repro.sim.kernels import JitBatchCountsEngine

    return JitBatchCountsEngine(protocol, init=init, n=n, seed=seed)


def _batch_jit_trial_runner(specs: Sequence[Any]) -> list:
    from repro.sim.batch_backend import run_trial_batch
    from repro.sim.kernels import JitBatchCountsEngine

    return run_trial_batch(specs, engine_factory=JitBatchCountsEngine)


register_backend(
    Backend(
        name=BACKEND_OBJECT,
        factory=_object_factory,
        supports=_object_supports,
        description="per-interaction state objects (every protocol; observers, faults)",
        native_form=NATIVE_CONFIG,
    )
)
register_backend(
    Backend(
        name=BACKEND_ARRAY,
        factory=_array_factory,
        supports=_finite_state_supports,
        description="vectorized per-agent state-code array (finite-state protocols)",
        native_form=NATIVE_CODES,
    )
)
register_backend(
    Backend(
        name=BACKEND_COUNTS,
        factory=_counts_factory,
        supports=_finite_state_supports,
        description="count-vector over state codes (finite-state protocols, aggregate statistics)",
        native_form=NATIVE_COUNTS,
    )
)
register_backend(
    Backend(
        name=BACKEND_BATCH,
        factory=_batch_factory,
        supports=_finite_state_supports,
        description=(
            "trial-vectorized (T, S) counts matrix — whole trial batches "
            "advanced in lockstep (finite-state protocols)"
        ),
        native_form=NATIVE_COUNTS,
        trial_runner=_batch_trial_runner,
        batch_cells=True,
    )
)
register_backend(
    Backend(
        name=BACKEND_BATCH_JIT,
        factory=_batch_jit_factory,
        supports=_finite_state_supports,
        description=(
            "the batch engine's lockstep step compiled with numba "
            "(optional [jit] extra; law-exact vs 'batch', not bit-exact)"
        ),
        native_form=NATIVE_COUNTS,
        trial_runner=_batch_jit_trial_runner,
        batch_cells=True,
    )
)

"""Scenario-grid sweeps with streaming JSONL checkpoints and resume.

The paper's claims are sweep-shaped — stabilization time vs. ``n``
(Theorem 1.1), the space/time trade-off vs. ``r``, recovery across
adversarial starts, availability vs. fault rate — so the natural workload
is a Cartesian *grid* of scenarios, each run for many independent seeded
trials.  This module is that workload, end to end:

* :class:`GridSpec` declares the grid: protocols (``ElectLeader_r`` and
  the baseline suite), population sizes, trade-off parameters, adversary
  initializers, fault rates and fault models (the
  :mod:`repro.sim.fault_engine` registry), plus the shared trial budget;
* :func:`expand_grid` expands it into :class:`ScenarioSpec` work items —
  tiny, declarative, trivially picklable records (strings and numbers
  only) with a child seed already derived in the parent, so execution is
  deterministic regardless of which process runs which trial;
* :func:`run_scenario` materializes one spec inside the worker (protocol,
  adversarial start as an :class:`~repro.sim.initial_state.InitialState`,
  fault engine) and runs it to convergence or budget — fault cells run
  the availability workload on whichever backend the grid names, with
  burst size a first-class grid axis, and their
  :class:`~repro.sim.faults.AvailabilityReport` outcomes (availability,
  median repair) are first-class JSONL fields;
* on a batch-cell backend (``--backend batch``) the sweep instead runs
  :func:`run_scenario_cell`: all of a cell's trials become the rows of
  one :class:`~repro.sim.batch_backend.BatchCountsEngine` advanced in
  lockstep, in-process — resume still works cell-wise, re-running any
  partially-checkpointed cell deterministically and appending only the
  missing rows;
* :func:`run_sweep` streams the specs through
  :func:`repro.sim.parallel.stream_ordered` — outcomes are re-ordered on
  arrival, appended to a JSONL results file as they land, and aggregated
  into per-scenario rows that are bit-identical to a sequential run for
  any worker count;
* the JSONL file doubles as a checkpoint: :func:`load_checkpoint`
  re-reads it (tolerating a truncated final line from a killed run),
  verifies it against the grid, and :func:`run_sweep` skips the specs it
  already covers — an interrupted large-``n`` sweep continues instead of
  restarting, and the resumed file is byte-identical to an uninterrupted
  one.

Records carry no timestamps or host information on purpose: the file is
a pure function of ``(grid, code)``, which is what makes the byte-level
resume guarantee (and CI's ``cmp`` gate) possible.
"""

from __future__ import annotations

import importlib.util
import itertools
import json
import math
import statistics
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.adversary.initializers import (
    ADVERSARIES,
    CODE_ADVERSARIES,
    COUNTS_ADVERSARIES,
)
from repro.baselines.cai_izumi_wada import CaiIzumiWada
from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.backends import (
    DEFAULT_BACKEND,
    NATIVE_COUNTS,
    get_backend,
    make_simulation,
)
from repro.sim.counts_backend import counts_aware, goal_counts_predicate
from repro.sim.fault_engine import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultEngine,
    FaultSpec,
    get_fault_model,
)
from repro.sim.initial_state import (
    Clean,
    InitialState,
    ObjectConfig,
    Replicated,
    SampledStart,
)
from repro.obs import get_tracer, perf_counter
from repro.sim.parallel import stream_ordered
from repro.sim.simulation import ConfigPredicate
from repro.sim.trials import TrialSummary

#: Adversary name meaning "clean start" (protocol's own initial states).
CLEAN = "clean"

#: Sentinel recorded as ``r`` for protocols without a trade-off parameter.
NO_R = 0

#: Fault-model sentinel for cells whose fault rate is zero (no injection).
NO_FAULTS = "none"

#: Derived-seed stream tags (offsets under a spec's child seed).  The
#: simulation itself uses streams 0 and 1 of its own seed; the adversary
#: and fault streams are derived from the *spec* seed with distinct tags,
#: so all four are independent.
_ADVERSARY_STREAM = 0xAD
_FAULT_STREAM = 0xFA

#: JSONL record kinds.
_META_KIND = "sweep-meta"
_TRIAL_KIND = "trial"
_JSONL_VERSION = 1


class SweepError(RuntimeError):
    """A sweep could not be started or resumed (bad grid, bad checkpoint)."""


def _numpy_available() -> bool:
    """Whether the code-space adversaries' numpy dependency is importable."""
    try:
        return importlib.util.find_spec("numpy") is not None
    except ImportError:  # pragma: no cover - exotic import hooks
        return False


# ---------------------------------------------------------------------------
# Protocol registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolKind:
    """One entry of the sweep's protocol axis.

    ``build(n, r)`` returns the protocol instance and its convergence
    predicate (counts-aware where the protocol has a counts form, so the
    counts backend checks convergence in ``O(S)``).  ``uses_r`` protocols
    sweep the full ``r`` axis (cells with ``r > n/2`` are skipped,
    mirroring :class:`ProtocolParams`); the rest collapse it to a single
    cell recorded with ``r = 0``.  The object-layout adversary
    initializers scramble ``ElectLeader`` state layouts specifically, so
    only ``elect_leader`` supports them (``supports_faults`` marks the
    same layout affinity for the object-layout fault scrambler);
    ``finite_state`` protocols instead support the code-space adversary
    suite (``CODE_ADVERSARIES``) and the code-space fault models
    (:mod:`repro.sim.fault_engine`) on every backend.  Which *backends* can
    run a protocol is not declared here — :class:`GridSpec` asks the
    backend registry (:func:`repro.sim.backends.get_backend`) via a small
    probe instance.
    """

    name: str
    uses_r: bool
    supports_adversaries: bool
    supports_faults: bool
    build: Callable[[int, int], tuple[PopulationProtocol, ConfigPredicate]]
    finite_state: bool = False


def _build_elect_leader(n: int, r: int) -> tuple[PopulationProtocol, ConfigPredicate]:
    protocol = ElectLeader(ProtocolParams(n=n, r=r))
    return protocol, protocol.is_safe_configuration


def _build_pairwise(n: int, r: int) -> tuple[PopulationProtocol, ConfigPredicate]:
    protocol = PairwiseElimination(n)
    return protocol, goal_counts_predicate(protocol)


def _build_cai_izumi_wada(n: int, r: int) -> tuple[PopulationProtocol, ConfigPredicate]:
    protocol = CaiIzumiWada(BaselineParams(n=n))
    # goal_counts ("no rank held twice") is exactly the silence predicate
    # in counts space, so one counts-aware bundle serves every backend.
    return protocol, counts_aware(
        protocol.is_silent_configuration,
        protocol.goal_counts,
        protocol.goal_counts_rows,
    )


def _build_loose(n: int, r: int) -> tuple[PopulationProtocol, ConfigPredicate]:
    protocol = LooselyStabilizingLeaderElection(BaselineParams(n=n))
    return protocol, goal_counts_predicate(protocol)


PROTOCOLS: dict[str, ProtocolKind] = {
    "elect_leader": ProtocolKind(
        "elect_leader", uses_r=True, supports_adversaries=True,
        supports_faults=True, build=_build_elect_leader,
    ),
    "pairwise_elimination": ProtocolKind(
        "pairwise_elimination", uses_r=False, supports_adversaries=False,
        supports_faults=False, build=_build_pairwise, finite_state=True,
    ),
    "cai_izumi_wada": ProtocolKind(
        "cai_izumi_wada", uses_r=False, supports_adversaries=False,
        supports_faults=False, build=_build_cai_izumi_wada, finite_state=True,
    ),
    "loosely_stabilizing": ProtocolKind(
        "loosely_stabilizing", uses_r=False, supports_adversaries=False,
        supports_faults=False, build=_build_loose, finite_state=True,
    ),
}


#: Capability-probe instances (one tiny build per protocol kind): backend
#: support is a property of the protocol *family*, so a small instance
#: answers for the whole axis.  Resource-level limits that only bite at a
#: sweep's largest ``n`` (table-size caps) still fail loudly per trial.
_PROBES: dict[str, PopulationProtocol] = {}


def _probe_protocol(kind: ProtocolKind) -> PopulationProtocol:
    probe = _PROBES.get(kind.name)
    if probe is None:
        probe = kind.build(16, 1)[0]
        _PROBES[kind.name] = probe
    return probe


# ---------------------------------------------------------------------------
# Grid declaration and expansion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridSpec:
    """A Cartesian scenario grid plus the shared per-trial budget.

    Axis order is fixed — ``protocol × n × r × adversary × fault_rate ×
    fault_model × burst_size``, then ``trials`` trials per cell — and
    expansion is deterministic, so a grid's global trial indices (and
    therefore its derived seeds and its JSONL checkpoint) are stable
    across runs and processes.  The ``fault_models`` and ``burst_sizes``
    axes only matter for cells with a positive fault rate; zero-rate
    cells collapse them to :data:`NO_FAULTS` and ``1`` (``burst_sizes``
    is the *last* product axis, so default grids expand exactly as they
    did before the axis existed).
    """

    ns: tuple[int, ...]
    rs: tuple[int, ...] = (1,)
    protocols: tuple[str, ...] = ("elect_leader",)
    adversaries: tuple[str, ...] = (CLEAN,)
    fault_rates: tuple[float, ...] = (0.0,)
    trials: int = 5
    seed: int = 0
    max_interactions: int = 20_000_000
    check_interval: int = 1_000
    backend: str = DEFAULT_BACKEND
    fault_models: tuple[str, ...] = (DEFAULT_FAULT_MODEL,)
    burst_sizes: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        try:
            engine = get_backend(self.backend)
        except ValueError as error:
            raise SweepError(str(error)) from None
        for name, values in (
            ("protocols", self.protocols), ("ns", self.ns), ("rs", self.rs),
            ("adversaries", self.adversaries), ("fault_rates", self.fault_rates),
            ("fault_models", self.fault_models), ("burst_sizes", self.burst_sizes),
        ):
            if not values:
                raise SweepError(f"grid axis '{name}' must be non-empty")
        for model in self.fault_models:
            if model not in FAULT_MODELS:
                known = ", ".join(FAULT_MODELS)
                raise SweepError(f"unknown fault model '{model}' (known: {known})")
        if any(rate > 0 for rate in self.fault_rates) and not _numpy_available():
            # The fault engine's burst schedule and corruption laws draw
            # from numpy PCG64 streams on every backend; fail at grid
            # construction rather than mid-sweep in a worker.
            raise SweepError(
                "fault injection (fault_rates > 0) requires numpy "
                "(pip install repro-podc25-leader-election[array])"
            )
        for protocol in self.protocols:
            if protocol not in PROTOCOLS:
                known = ", ".join(sorted(PROTOCOLS))
                raise SweepError(f"unknown protocol '{protocol}' (known: {known})")
            reason = engine.supports(_probe_protocol(PROTOCOLS[protocol]))
            if reason is not None:
                raise SweepError(
                    f"protocol '{protocol}' cannot run on the "
                    f"'{self.backend}' backend: {reason}"
                )
        for adversary in self.adversaries:
            if adversary != CLEAN and adversary not in ADVERSARIES \
                    and adversary not in CODE_ADVERSARIES:
                known = ", ".join([CLEAN, *sorted(ADVERSARIES), *sorted(CODE_ADVERSARIES)])
                raise SweepError(f"unknown adversary '{adversary}' (known: {known})")
            if adversary in CODE_ADVERSARIES and not _numpy_available():
                # Fail at grid construction, not mid-sweep in a worker:
                # the numpy-free object runtime is supported, but the
                # code-space initializers draw with numpy on any backend.
                raise SweepError(
                    f"adversary '{adversary}' requires numpy "
                    "(pip install repro-podc25-leader-election[array])"
                )
        for n in self.ns:
            if n < 2:
                raise SweepError(f"population size must be >= 2, got n={n}")
        for r in self.rs:
            if r < 1:
                raise SweepError(f"trade-off parameter must be >= 1, got r={r}")
        for rate in self.fault_rates:
            if rate < 0:
                raise SweepError(f"fault rate must be >= 0, got {rate}")
        for burst in self.burst_sizes:
            if burst < 1:
                raise SweepError(f"burst size must be >= 1, got {burst}")
        if self.trials < 1:
            raise SweepError(f"trials must be >= 1, got {self.trials}")
        if self.max_interactions < 1 or self.check_interval < 1:
            raise SweepError("max_interactions and check_interval must be positive")

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-round-trippable form (checkpoint fingerprint)."""
        data = asdict(self)
        return {key: list(value) if isinstance(value, tuple) else value
                for key, value in data.items()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GridSpec":
        kwargs = dict(data)
        for key in (
            "protocols", "ns", "rs", "adversaries", "fault_rates",
            "fault_models", "burst_sizes",
        ):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined trial of one grid cell.

    Deliberately declarative — names and numbers only — so specs pickle
    in a few bytes and the worker rebuilds the heavyweight objects
    (protocol, adversarial configuration, fault injector) locally from
    the derived seed.
    """

    index: int  # global position in grid expansion order
    protocol: str
    n: int
    r: int  # NO_R (0) for protocols without a trade-off parameter
    adversary: str
    fault_rate: float
    trial: int  # trial number within the scenario
    seed: int  # child seed derived from (grid seed, index) in the parent
    max_interactions: int
    check_interval: int
    backend: str = DEFAULT_BACKEND  # execution engine, resolved in the parent
    fault_model: str = NO_FAULTS  # corruption law for fault_rate > 0 cells
    burst_size: int = 1  # agents corrupted per burst (fault cells)

    @property
    def scenario_key(self) -> tuple[str, int, int, str, float, str, int]:
        """The grid-cell identity (everything but trial/index/seed)."""
        return (
            self.protocol, self.n, self.r, self.adversary,
            self.fault_rate, self.fault_model, self.burst_size,
        )

    @property
    def scenario_id(self) -> str:
        return (
            f"{self.protocol}/n={self.n}/r={self.r}"
            f"/adv={self.adversary}/fault={self.fault_rate:g}"
            f"/model={self.fault_model}/burst={self.burst_size}"
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """The per-trial result row appended to the JSONL stream.

    Fault cells (``fault_rate > 0``) run the availability workload and
    carry its first-class outcomes: ``availability`` (fraction of correct
    checkpoints over the full budget), ``median_repair`` (interactions
    from each burst to the first correct checkpoint after it; ``None``
    when no repair was ever observed), with ``converged`` meaning
    "correct at the final checkpoint".  Fault-free cells leave both at
    ``None`` and keep the run-to-convergence semantics.
    """

    index: int
    protocol: str
    n: int
    r: int
    adversary: str
    fault_rate: float
    trial: int
    seed: int
    converged: bool
    interactions: int
    parallel_time: float
    fault_bursts: int = 0
    backend: str = DEFAULT_BACKEND
    fault_model: str = NO_FAULTS
    burst_size: int = 1
    availability: Optional[float] = None
    median_repair: Optional[float] = None

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"kind": _TRIAL_KIND}
        record.update(asdict(self))
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ScenarioOutcome":
        fields = {key: record[key] for key in (
            "index", "protocol", "n", "r", "adversary", "fault_rate",
            "trial", "seed", "converged", "interactions", "parallel_time",
        )}
        fields["fault_bursts"] = record.get("fault_bursts", 0)
        fields["backend"] = record.get("backend", DEFAULT_BACKEND)
        fields["fault_model"] = record.get("fault_model", NO_FAULTS)
        fields["burst_size"] = record.get("burst_size", 1)
        fields["availability"] = record.get("availability")
        fields["median_repair"] = record.get("median_repair")
        return cls(**fields)


def expand_grid(grid: GridSpec) -> list[ScenarioSpec]:
    """Expand the Cartesian grid into globally-indexed scenario specs.

    Cells that are invalid for their protocol are dropped or collapsed,
    mirroring the ``tradeoff`` sweep: ``elect_leader`` requires
    ``1 <= r <= n/2`` (other ``(n, r)`` pairs are skipped), and a protocol
    that ignores an axis — ``r`` for every baseline, adversaries and fault
    injection for protocols whose state layout the scramblers don't speak —
    contributes one collapsed cell (``r = 0``, clean start, rate ``0``) no
    matter how many values the grid lists, so mixed protocol/baseline
    grids stay expressible.  Raises if nothing survives.
    """
    specs: list[ScenarioSpec] = []
    seen_cells: set[tuple[str, int, int, str, float, str, int]] = set()
    for protocol, n, r, adversary, fault_rate, fault_model, burst_size in itertools.product(
        grid.protocols, grid.ns, grid.rs, grid.adversaries,
        grid.fault_rates, grid.fault_models, grid.burst_sizes,
    ):
        kind = PROTOCOLS[protocol]
        if kind.uses_r:
            if not 1 <= r <= n // 2:
                continue
        else:
            r = NO_R
        if adversary in CODE_ADVERSARIES:
            # Code-space adversaries need the finite encoding; the
            # object-layout suite needs an ElectLeader state layout.
            if not kind.finite_state:
                adversary = CLEAN
        elif not kind.supports_adversaries:
            adversary = CLEAN
        # Fault injection runs wherever some corruption law speaks the
        # protocol: the object-layout scrambler (supports_faults) or the
        # code-space fault models (finite_state).  Cells pairing a model
        # with a protocol it cannot corrupt (e.g. kill_leaders on the
        # encoding-less elect_leader) are skipped, mirroring the r > n/2
        # rule; zero-rate cells collapse the model axis entirely.
        if not (kind.supports_faults or kind.finite_state):
            fault_rate = 0.0
        if fault_rate == 0.0:
            fault_model = NO_FAULTS
            burst_size = 1
        elif get_fault_model(fault_model).supports(_probe_protocol(kind)) is not None:
            continue
        cell = (protocol, n, r, adversary, fault_rate, fault_model, burst_size)
        if cell in seen_cells:  # collapsed axes revisit the same cell
            continue
        seen_cells.add(cell)
        for trial in range(grid.trials):
            index = len(specs)
            specs.append(
                ScenarioSpec(
                    index=index,
                    protocol=protocol,
                    n=n,
                    r=r,
                    adversary=adversary,
                    fault_rate=fault_rate,
                    trial=trial,
                    seed=derive_seed(grid.seed, index),
                    max_interactions=grid.max_interactions,
                    check_interval=grid.check_interval,
                    backend=grid.backend,
                    fault_model=fault_model,
                    burst_size=burst_size,
                )
            )
    if not specs:
        raise SweepError(
            "grid expansion produced no runnable scenarios "
            "(every (n, r) cell violated 1 <= r <= n/2?)"
        )
    return specs


# ---------------------------------------------------------------------------
# Deterministic sharding
# ---------------------------------------------------------------------------


#: Fixed salt under which :func:`shard_of` hashes trial indices.  Part of
#: the checkpoint format: changing it re-partitions every sharded sweep.
_SHARD_SALT = 0x51A2D

#: A shard request: ``(index, count)`` with ``0 <= index < count``.
Shard = tuple[int, int]


def validate_shard(shard: Shard) -> Shard:
    """Normalize and validate an ``(index, count)`` shard request."""
    try:
        index, count = (int(value) for value in shard)
    except (TypeError, ValueError):
        raise SweepError(f"shard must be an (index, count) pair, got {shard!r}") from None
    if count < 1:
        raise SweepError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise SweepError(f"shard index must satisfy 0 <= index < {count}, got {index}")
    return index, count


def shard_of(index: int, shard_count: int) -> int:
    """The shard owning global trial index ``index`` among ``shard_count``.

    A splitmix-style hash of the trial index alone (:func:`derive_seed`
    under a fixed salt), so the assignment is a pure function of
    ``(index, shard_count)`` — stable across processes, enumeration
    orders, and machines.  That stability is what makes shard outputs
    disjoint by construction and lets the merge validator treat any
    duplicate trial index as evidence of double-counting.
    """
    if shard_count < 1:
        raise SweepError(f"shard count must be >= 1, got {shard_count}")
    return derive_seed(_SHARD_SALT, index) % shard_count


def shard_specs(
    specs: Sequence[ScenarioSpec], shard: Shard, *, by_cell: bool = False
) -> list[ScenarioSpec]:
    """Select the specs one shard owns, preserving expansion order.

    Trial-granular by default: spec ``i`` belongs to shard
    ``shard_of(i, count)``.  With ``by_cell=True`` whole grid cells are
    assigned by the hash of their *first* trial index — required by the
    batch-cell engines, whose per-row outcomes depend on the full cell
    membership advancing in lockstep (splitting a cell across shards
    would change its bytes relative to an unsharded run).
    """
    index, count = validate_shard(shard)
    if count == 1:
        return list(specs)
    if not by_cell:
        return [spec for spec in specs if shard_of(spec.index, count) == index]
    selected: list[ScenarioSpec] = []
    for cell in _iter_cells(specs):
        if shard_of(cell[0].index, count) == index:
            selected.extend(cell)
    return selected


# ---------------------------------------------------------------------------
# Scenario execution (runs inside the worker process)
# ---------------------------------------------------------------------------


def _scenario_init(spec: ScenarioSpec, protocol: PopulationProtocol) -> Optional[InitialState]:
    """The spec's start configuration as an :class:`InitialState`.

    Code-space adversaries ship as an ``O(1)``
    :class:`~repro.sim.initial_state.SampledStart` handle: the backend
    materializes whichever form is native — counts engines get the
    law-matched ``O(S)`` twin, everyone else the state-code form — from
    a fresh generator on the same derived seed, so the draw matches what
    every engine saw before the ``init=`` redesign.  Object-layout
    adversaries build their configuration eagerly (their initializers
    speak state objects).  ``None`` means a clean ``spec.n``-agent start.
    """
    if spec.adversary in CODE_ADVERSARIES:
        return SampledStart(
            spec.adversary, spec.n, derive_seed(spec.seed, _ADVERSARY_STREAM)
        )
    if spec.adversary != CLEAN:
        adversary_rng = make_rng(derive_seed(spec.seed, _ADVERSARY_STREAM))
        return ObjectConfig(ADVERSARIES[spec.adversary](protocol, adversary_rng))
    return None


def _fault_spec(spec: ScenarioSpec) -> Optional[FaultSpec]:
    """The spec's fault injection as a portable :class:`FaultSpec` (or None)."""
    if spec.fault_rate <= 0:
        return None
    return FaultSpec(
        model=spec.fault_model,
        rate=spec.fault_rate,
        burst_size=spec.burst_size,
        seed=derive_seed(spec.seed, _FAULT_STREAM),
    )


def _outcome(
    spec: ScenarioSpec,
    *,
    converged: bool,
    interactions: int,
    parallel_time: float,
    fault_bursts: int = 0,
    availability: Optional[float] = None,
    median_repair: Optional[float] = None,
) -> ScenarioOutcome:
    return ScenarioOutcome(
        index=spec.index,
        protocol=spec.protocol,
        n=spec.n,
        r=spec.r,
        adversary=spec.adversary,
        fault_rate=spec.fault_rate,
        trial=spec.trial,
        seed=spec.seed,
        converged=converged,
        interactions=interactions,
        parallel_time=parallel_time,
        fault_bursts=fault_bursts,
        backend=spec.backend,
        fault_model=spec.fault_model,
        burst_size=spec.burst_size,
        availability=availability,
        median_repair=median_repair,
    )


def _availability_outcome(spec: ScenarioSpec, report) -> ScenarioOutcome:
    repair = report.median_repair_interactions
    return _outcome(
        spec,
        converged=report.last_checkpoint_correct,
        interactions=spec.max_interactions,
        parallel_time=spec.max_interactions / spec.n,
        fault_bursts=report.fault_bursts,
        availability=round(report.availability, 6),
        median_repair=None if math.isnan(repair) else float(repair),
    )


def _emit_step_spans(tracer, timings, started: float, **labels: Any) -> None:
    """Record an engine's accumulated step-phase seconds as ``step.*`` spans.

    The phases of one drive are emitted as sibling spans sharing the
    drive's start timestamp — their durations (the phase table in
    ``repro trace``) are exact accumulations; only their placement on the
    timeline is collapsed.
    """
    for phase, seconds in timings.items():
        if seconds > 0.0:
            tracer.record_span(f"step.{phase}", started, seconds, **labels)


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Materialize and run one scenario trial (in whichever process it landed).

    Everything stochastic draws from streams derived from ``spec.seed``:
    the simulation's scheduler/transition streams, the adversary's
    configuration stream, and the fault engine's schedule/corruption
    streams — so the outcome is a pure function of the spec.

    Fault cells run the backend-generic availability workload
    (:meth:`repro.sim.fault_engine.FaultEngine.measure_availability`) for
    the full interaction budget, corrupting ``spec.burst_size`` agents
    per burst and sampling the cell's convergence predicate every
    ``check_interval`` interactions; fault-free cells run to convergence
    as before.
    """
    kind = PROTOCOLS[spec.protocol]
    protocol, predicate = kind.build(spec.n, spec.r)
    init = _scenario_init(spec, protocol)
    sim = make_simulation(
        protocol, init=init,
        n=None if init is not None else spec.n,
        seed=spec.seed, backend=spec.backend,
    )
    # With a trace sink configured, collect the engine's step-phase
    # breakdown for this trial.  The instrumented drive is a twin of the
    # plain one issuing identical RNG calls in identical order, so the
    # outcome stays bit-identical (a tier-1 test holds that equality).
    tracer = get_tracer()
    timings = sim.instrument_steps() if tracer.enabled else None
    started = perf_counter() if tracer.enabled else 0.0
    if spec.fault_rate > 0:
        engine = FaultEngine(
            get_fault_model(spec.fault_model),
            protocol,
            n=spec.n,
            rate=spec.fault_rate,
            burst_size=spec.burst_size,
            seed=derive_seed(spec.seed, _FAULT_STREAM),
        )
        report = engine.measure_availability(
            sim, predicate,
            total_interactions=spec.max_interactions,
            checkpoint_every=spec.check_interval,
        )
        outcome = _availability_outcome(spec, report)
    else:
        result = sim.run_until(predicate, spec.max_interactions, spec.check_interval)
        outcome = _outcome(
            spec,
            converged=result.converged,
            interactions=result.interactions,
            parallel_time=result.parallel_time,
        )
    if timings is not None:
        _emit_step_spans(tracer, timings, started, item=spec.index)
    return outcome


def run_scenario_cell(specs: Sequence[ScenarioSpec]) -> list[ScenarioOutcome]:
    """Run one grid cell's trials as a single lockstep batch.

    The batch twin of per-trial :func:`run_scenario`: all of a cell's
    trial specs become the rows of one
    :class:`~repro.sim.batch_backend.BatchCountsEngine` (built through
    ``make_simulation`` with a
    :class:`~repro.sim.initial_state.Replicated` start), so the whole
    cell advances in lockstep with a fixed number of numpy calls per
    step.  Per-row starts and fault schedules still draw from each
    spec's own derived seed — burst positions are bit-identical to the
    per-trial engine's — while the interaction stream is shared (rows
    are independent and distribution-identical to per-trial runs; a
    one-trial cell is bit-identical to ``backend='counts'``).
    """
    specs = list(specs)
    first = specs[0]
    kind = PROTOCOLS[first.protocol]
    protocol, predicate = kind.build(first.n, first.r)
    rows = tuple(
        _scenario_init(spec, protocol) or Clean(spec.n) for spec in specs
    )
    faults = [_fault_spec(spec) for spec in specs]
    engine = make_simulation(
        protocol,
        init=Replicated(rows, len(rows)),
        seed=first.seed,
        backend=first.backend,
    )
    tracer = get_tracer()
    timings = engine.instrument_steps() if tracer.enabled else None
    started = perf_counter() if tracer.enabled else 0.0
    if first.fault_rate > 0:
        reports = engine.measure_rows_availability(
            predicate,
            total_interactions=first.max_interactions,
            checkpoint_every=first.check_interval,
            faults=faults,
        )
        outcomes = [
            _availability_outcome(spec, report)
            for spec, report in zip(specs, reports)
        ]
    else:
        row_outcomes = engine.run_rows_until(
            predicate,
            max_interactions=first.max_interactions,
            check_interval=first.check_interval,
        )
        outcomes = [
            _outcome(
                spec,
                converged=row.converged,
                interactions=row.interactions,
                parallel_time=row.parallel_time,
            )
            for spec, row in zip(specs, row_outcomes)
        ]
    if timings is not None:
        _emit_step_spans(
            tracer, timings, started,
            cell="/".join(str(part) for part in first.scenario_key),
        )
    return outcomes


# ---------------------------------------------------------------------------
# JSONL checkpoint
# ---------------------------------------------------------------------------


def _dump_line(record: dict[str, Any]) -> str:
    # One canonical encoding — byte-identical files require byte-identical
    # lines, so every writer funnels through here.
    return json.dumps(record, separators=(",", ":"), sort_keys=False) + "\n"


def _meta_record(grid: GridSpec, shard: Optional[Shard] = None) -> dict[str, Any]:
    record: dict[str, Any] = {
        "kind": _META_KIND, "version": _JSONL_VERSION, "grid": grid.to_dict(),
    }
    if shard is not None:
        # Sharded files carry their identity so resume and merge can tell
        # a shard checkpoint from an unsharded one; the key is *absent*
        # (not null) on unsharded files, keeping their bytes unchanged.
        record["shard"] = list(validate_shard(shard))
    return record


def _default_legacy_grid_keys(stored_grid: dict[str, Any]) -> dict[str, Any]:
    # Checkpoints written before the backend / fault-model / burst knobs
    # existed carry none of those keys; they are object-backend,
    # default-model files, so defaulting the keys (mirroring
    # ScenarioOutcome.from_record) keeps them readable instead of
    # rejecting them as "a different grid".
    stored_grid = dict(stored_grid)
    stored_grid.setdefault("backend", DEFAULT_BACKEND)
    stored_grid.setdefault("burst_sizes", [1])
    stored_grid.setdefault("fault_models", [DEFAULT_FAULT_MODEL])
    return stored_grid


def read_checkpoint_grid(path: Path) -> tuple[GridSpec, Optional[Shard]]:
    """Read just the metadata line: the grid a checkpoint was written for.

    Returns ``(grid, shard)`` where ``shard`` is the ``(index, count)``
    pair of a sharded checkpoint or ``None`` for an unsharded one.  This
    is the merge validator's first pass — cheap enough to run over every
    shard file before any of them is fully parsed.
    """
    with open(path, "rb") as handle:
        first = handle.readline()
    if not first.endswith(b"\n"):
        raise SweepError(f"{path}: no complete metadata line (empty or truncated file)")
    try:
        meta = json.loads(first.decode("utf-8"))
        if not isinstance(meta, dict):
            raise ValueError("not a sweep record")
    except (ValueError, UnicodeDecodeError) as error:
        raise SweepError(f"{path}: corrupt metadata line: {error}") from None
    if meta.get("kind") != _META_KIND:
        raise SweepError(f"{path}: first line is not a {_META_KIND} record")
    if meta.get("version") != _JSONL_VERSION:
        raise SweepError(f"{path}: unsupported checkpoint version {meta.get('version')}")
    stored_grid = meta.get("grid")
    if not isinstance(stored_grid, dict):
        raise SweepError(f"{path}: metadata record carries no grid")
    try:
        grid = GridSpec.from_dict(_default_legacy_grid_keys(stored_grid))
    except (TypeError, SweepError) as error:
        raise SweepError(f"{path}: metadata grid does not parse: {error}") from None
    shard = meta.get("shard")
    return grid, validate_shard(tuple(shard)) if shard is not None else None


def write_checkpoint(
    path: Path,
    grid: GridSpec,
    outcomes: Sequence[ScenarioOutcome],
    *,
    shard: Optional[Shard] = None,
) -> None:
    """Write a complete checkpoint file in the canonical encoding.

    The metadata line plus one trial record per outcome, in the given
    order — byte-identical to what :func:`run_sweep` streams for the same
    outcomes, which is what lets ``repro merge`` reconstitute an
    unsharded file from validated shard files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(_dump_line(_meta_record(grid, shard)))
        for outcome in outcomes:
            handle.write(_dump_line(outcome.to_record()))


#: GridSpec field names accepted by declarative grid files.
GRID_FILE_KEYS: tuple[str, ...] = tuple(field.name for field in fields(GridSpec))

#: Expected JSON shape per grid-file key: (container element type | scalar type).
_GRID_FILE_SCHEMA: dict[str, tuple[bool, type | tuple[type, ...]]] = {
    "protocols": (True, str),
    "ns": (True, int),
    "rs": (True, int),
    "adversaries": (True, str),
    "fault_rates": (True, (int, float)),
    "fault_models": (True, str),
    "burst_sizes": (True, int),
    "trials": (False, int),
    "seed": (False, int),
    "max_interactions": (False, int),
    "check_interval": (False, int),
    "backend": (False, str),
}


def load_grid_file(path: str | Path) -> dict[str, Any]:
    """Read a declarative grid file: JSON with :class:`GridSpec` keys.

    The file is the one artifact a fabric worker needs instead of a dozen
    flags (``repro sweep --grid grid.json``); flags still override its
    values.  Returns the validated key/value dict — semantic validation
    (axis contents, backend capability) stays with ``GridSpec`` itself.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise SweepError(f"cannot read grid file {path}: {error}") from None
    except ValueError as error:
        raise SweepError(f"{path}: grid file is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise SweepError(f"{path}: grid file must be a JSON object of GridSpec keys")
    unknown = sorted(set(data) - set(GRID_FILE_KEYS))
    if unknown:
        known = ", ".join(GRID_FILE_KEYS)
        raise SweepError(
            f"{path}: unknown grid key '{unknown[0]}' (known: {known})"
        )
    for key, value in data.items():
        is_axis, element = _GRID_FILE_SCHEMA[key]
        if is_axis:
            ok = isinstance(value, list) and all(
                isinstance(item, element) and not isinstance(item, bool)
                for item in value
            )
        else:
            ok = isinstance(value, element) and not isinstance(value, bool)
        if not ok:
            shape = f"a list of {element}" if is_axis else str(element)
            raise SweepError(f"{path}: grid key '{key}' must be {shape}, got {value!r}")
    return data


def load_checkpoint(
    path: Path,
    grid: GridSpec,
    specs: Sequence[ScenarioSpec],
    *,
    shard: Optional[Shard] = None,
) -> tuple[dict[int, ScenarioOutcome], int]:
    """Read a (possibly truncated) JSONL checkpoint back.

    Returns ``(outcomes by global index, valid byte length)``.  The final
    line is allowed to be garbage — a killed writer leaves a partial line
    — and is simply discarded; corruption anywhere *else* is an error, as
    is a metadata line whose grid differs from ``grid`` or a trial record
    that contradicts its spec (different seed ⇒ different grid or code).
    ``shard`` is the shard this checkpoint is expected to cover — a file
    written for a different shard (or an unsharded file when a shard is
    expected, and vice versa) is refused rather than silently mixed.
    """
    raw = path.read_bytes()
    outcomes: dict[int, ScenarioOutcome] = {}
    offset = 0
    records: list[tuple[dict[str, Any], int]] = []  # (record, end offset)
    lines = raw.split(b"\n")
    # split() leaves a final element for the bytes after the last newline:
    # empty for a cleanly-terminated file, the partial line otherwise.
    complete, partial = lines[:-1], lines[-1]
    for position, line in enumerate(complete):
        end = offset + len(line) + 1
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError("not a sweep record")
        except (ValueError, UnicodeDecodeError) as error:
            if position == len(complete) - 1 and not partial:
                break  # interrupted mid-line, right before the newline
            raise SweepError(f"{path}: corrupt checkpoint line {position + 1}: {error}")
        records.append((record, end))
        offset = end
    if not records:
        return {}, 0
    meta, meta_end = records[0]
    if meta.get("kind") != _META_KIND:
        raise SweepError(f"{path}: first line is not a {_META_KIND} record")
    if meta.get("version") != _JSONL_VERSION:
        raise SweepError(f"{path}: unsupported checkpoint version {meta.get('version')}")
    stored_grid = meta.get("grid")
    if isinstance(stored_grid, dict):
        # Checkpoints written before the backend / fault-model knobs
        # existed carry no "backend"/"fault_models" keys; they are
        # object-backend, default-model files, so defaulting the keys
        # (mirroring ScenarioOutcome.from_record) keeps them resumable
        # instead of rejecting them as "a different grid".
        stored_grid = dict(stored_grid)
        stored_grid.setdefault("backend", DEFAULT_BACKEND)
        stored_grid.setdefault("burst_sizes", [1])
        if "fault_models" not in stored_grid:
            # One exception: pre-fault-engine counts-backend cells with
            # code-space adversaries drew the O(n) codes form; this
            # version draws the O(S) counts twin (same law, different
            # realization).  Resuming such a file would silently mix two
            # start-configuration streams, so refuse it instead.
            if get_backend(grid.backend).native_form == NATIVE_COUNTS and any(
                adversary in COUNTS_ADVERSARIES for adversary in grid.adversaries
            ):
                raise SweepError(
                    f"{path}: checkpoint predates the fault-engine schema and its "
                    "counts-backend adversarial cells used the codes-form start "
                    "law; finish it with the version that wrote it or start a "
                    "fresh output file"
                )
            stored_grid["fault_models"] = [DEFAULT_FAULT_MODEL]
    if stored_grid != grid.to_dict():
        raise SweepError(
            f"{path}: checkpoint was written for a different grid; "
            "re-run with the original flags or start a fresh output file"
        )
    expected_shard = None if shard is None else list(validate_shard(shard))
    stored_shard = meta.get("shard")
    if stored_shard != expected_shard:
        def _describe(value: Optional[list[int]]) -> str:
            return "unsharded" if value is None else f"shard {value[0]}/{value[1]}"
        raise SweepError(
            f"{path}: checkpoint is {_describe(stored_shard)} but this run is "
            f"{_describe(expected_shard)}; use a matching --shard or a fresh "
            "output file"
        )
    valid_end = meta_end
    for record, end in records[1:]:
        if record.get("kind") != _TRIAL_KIND:
            raise SweepError(f"{path}: unexpected record kind {record.get('kind')!r}")
        try:
            outcome = ScenarioOutcome.from_record(record)
        except (KeyError, TypeError) as error:
            raise SweepError(f"{path}: malformed trial record: {error}")
        if not 0 <= outcome.index < len(specs):
            raise SweepError(f"{path}: trial index {outcome.index} outside the grid")
        spec = specs[outcome.index]
        if (
            outcome.seed != spec.seed
            or outcome.trial != spec.trial
            or outcome.protocol != spec.protocol
            or (outcome.n, outcome.r) != (spec.n, spec.r)
            or outcome.adversary != spec.adversary
            or outcome.fault_rate != spec.fault_rate
            or outcome.backend != spec.backend
            or outcome.fault_model != spec.fault_model
            or outcome.burst_size != spec.burst_size
        ):
            raise SweepError(
                f"{path}: trial record {outcome.index} does not match the grid "
                "(was the checkpoint produced by different flags?)"
            )
        if outcome.index in outcomes:
            raise SweepError(f"{path}: duplicate trial record {outcome.index}")
        outcomes[outcome.index] = outcome
        valid_end = end
    return outcomes, valid_end


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------


#: Progress callback: ``progress(completed_trials, total_trials)``.
ProgressCallback = Callable[[int, int], None]


@dataclass
class SweepResult:
    """Everything a finished (or resumed-and-finished) sweep produced."""

    grid: GridSpec
    specs: list[ScenarioSpec]  # the specs this run owned (the shard's, if any)
    outcomes: list[ScenarioOutcome]  # in global index order
    resumed_trials: int  # how many came from the checkpoint
    shard: Optional[Shard] = None  # the shard this run covered, if sharded

    @property
    def rows(self) -> list[dict[str, object]]:
        return aggregate_rows(self.specs, self.outcomes)


def aggregate_rows(
    specs: Sequence[ScenarioSpec], outcomes: Sequence[ScenarioOutcome]
) -> list[dict[str, object]]:
    """Fold per-trial outcomes into one row per grid cell.

    Outcomes are consumed in global index order (the caller guarantees
    it), so the aggregates — medians, the nearest-rank p95, success rates
    — are bit-identical to a sequential run for any worker count.  Fault
    cells additionally aggregate the availability workload's first-class
    outcomes: median availability and the median of per-trial median
    repair times (``"-"`` on fault-free cells).
    """
    order: list[tuple[str, int, int, str, float, str, int]] = []
    cells: dict[tuple[str, int, int, str, float, str, int], list[ScenarioOutcome]] = {}
    for spec in specs:
        if spec.scenario_key not in cells:
            order.append(spec.scenario_key)
            cells[spec.scenario_key] = []
    for outcome in outcomes:
        key = (
            outcome.protocol, outcome.n, outcome.r, outcome.adversary,
            outcome.fault_rate, outcome.fault_model, outcome.burst_size,
        )
        cells[key].append(outcome)
    rows = []
    for key in order:
        protocol, n, r, adversary, fault_rate, fault_model, burst_size = key
        group = cells[key]
        converged = [o for o in group if o.converged]
        summary = TrialSummary(
            label=f"{protocol}/adv={adversary}",
            n=n,
            trials=len(group),
            converged=len(converged),
            interactions=[float(o.interactions) for o in converged],
            parallel_times=[o.parallel_time for o in converged],
        )
        availabilities = [o.availability for o in group if o.availability is not None]
        repairs = [o.median_repair for o in group if o.median_repair is not None]
        rows.append(
            {
                "protocol": protocol,
                "n": n,
                "r": r if r != NO_R else "-",
                "adversary": adversary,
                "fault_rate": f"{fault_rate:g}",
                "fault_model": fault_model if fault_model != NO_FAULTS else "-",
                "burst_size": burst_size if fault_model != NO_FAULTS else "-",
                "trials": summary.trials,
                "success_rate": round(summary.success_rate, 3),
                "median_interactions": summary.median_interactions,
                "median_time": round(summary.median_time, 2),
                "p95_time": round(summary.p95_time, 2),
                "availability": (
                    round(statistics.median(availabilities), 3) if availabilities else "-"
                ),
                "median_repair": (
                    round(statistics.median(repairs), 1) if repairs else "-"
                ),
            }
        )
    return rows


def _iter_cells(specs: Sequence[ScenarioSpec]):
    """Group specs into their grid cells (contiguous in expansion order)."""
    cell: list[ScenarioSpec] = []
    for spec in specs:
        if cell and spec.scenario_key != cell[0].scenario_key:
            yield cell
            cell = []
        cell.append(spec)
    if cell:
        yield cell


def _run_missing_cells(
    specs: Sequence[ScenarioSpec], completed: dict[int, ScenarioOutcome]
):
    """Drive a batch-cell backend: whole cells at a time, resume-aware.

    A cell with *any* trial missing from the checkpoint is re-run in
    full — :func:`run_scenario_cell` is a pure function of the specs, so
    already-checkpointed rows reproduce identically and only the missing
    outcomes are yielded (in index order), keeping the resumed JSONL
    byte-identical to an uninterrupted run.  Fully-checkpointed cells
    are skipped outright.
    """
    for cell in _iter_cells(specs):
        if all(spec.index in completed for spec in cell):
            continue
        for outcome in run_scenario_cell(cell):
            if outcome.index not in completed:
                yield outcome


def run_sweep(
    grid: GridSpec,
    *,
    workers: Optional[int] = 1,
    jsonl_path: Optional[str | Path] = None,
    resume: bool = False,
    force: bool = False,
    progress: Optional[ProgressCallback] = None,
    shard: Optional[Shard] = None,
) -> SweepResult:
    """Run (or resume) a scenario-grid sweep.

    With ``jsonl_path`` set, every completed trial is appended to the file
    as it lands — in global index order, courtesy of the streaming
    engine's reorder buffer — so the file is always a clean, resumable
    prefix of the full sweep.  ``resume=True`` re-reads an existing file,
    truncates any partial final line a killed run left behind, and runs
    only the missing specs; ``force=True`` discards an existing file.
    An existing non-empty file with neither flag is an error rather than
    a silent overwrite.

    The aggregate rows (and, when every trial is written by this engine,
    the JSONL bytes themselves) are identical for any ``workers`` value
    and for any interrupt/resume split.

    With ``shard=(i, k)`` the run owns only its hash-assigned slice of
    the expanded grid (:func:`shard_specs`): the checkpoint carries the
    shard identity in its metadata, resume refuses a mismatched file,
    and the trial records are exactly the unsharded run's bytes for the
    owned indices — which is what lets ``repro merge`` concatenate the
    ``k`` shard files back into the byte-identical unsharded checkpoint.
    On a batch-cell backend whole cells are assigned to shards, keeping
    the lockstep cell membership (and therefore the bytes) intact.

    On a batch-cell backend (``Backend.batch_cells``, e.g. ``batch``)
    the sweep runs cell-grouped and in-process — every cell's trials are
    one lockstep engine, which *is* the parallelism — so ``workers`` is
    ignored there; checkpointing, resume and the byte-identity guarantee
    are unchanged (a partially-checkpointed cell is re-run
    deterministically and only its missing rows are appended).
    """
    specs = expand_grid(grid)
    batch_cells = get_backend(grid.backend).batch_cells
    if shard is None:
        work_specs = specs
    else:
        shard = validate_shard(shard)
        work_specs = shard_specs(specs, shard, by_cell=batch_cells)
    owned = {spec.index for spec in work_specs}
    completed: dict[int, ScenarioOutcome] = {}
    path = Path(jsonl_path) if jsonl_path is not None else None
    fresh_file = True
    if path is not None and path.exists() and path.stat().st_size > 0:
        if resume:
            completed, valid_end = load_checkpoint(path, grid, specs, shard=shard)
            stray = sorted(set(completed) - owned)
            if stray:
                raise SweepError(
                    f"{path}: trial record {stray[0]} is not owned by "
                    f"shard {shard[0]}/{shard[1]}"
                )
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
            fresh_file = valid_end == 0
        elif force:
            path.unlink()
        else:
            raise SweepError(
                f"{path} already exists; resume it (--resume / resume=True) "
                "or overwrite it (--force / force=True)"
            )

    to_run = [spec for spec in work_specs if spec.index not in completed]
    outcomes = dict(completed)
    done = len(completed)
    total = len(work_specs)
    if progress:
        progress(done, total)
    handle = None
    # Tracing (see repro.obs): per-trial spans ride the reorder buffer
    # (span="sweep.trial"), checkpoint appends get their own spans, and
    # each cell's wall-clock window is reconstructed as it completes.
    # The trace sink is a separate file — never the checkpoint, whose
    # bytes stay a pure function of (grid, code) with or without tracing.
    tracer = get_tracer()
    if tracer.enabled:
        cell_of = {spec.index: spec.scenario_key for spec in work_specs}
        cell_pending: dict[Any, int] = {}
        for spec in work_specs:
            if spec.index not in completed:
                cell_pending[spec.scenario_key] = (
                    cell_pending.get(spec.scenario_key, 0) + 1
                )
        cell_started: dict[Any, float] = {}
    try:
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(path, "a", encoding="utf-8", newline="\n")
            if fresh_file:
                handle.write(_dump_line(_meta_record(grid, shard)))
                handle.flush()
        if batch_cells:
            outcome_stream = _run_missing_cells(work_specs, completed)
        else:
            outcome_stream = stream_ordered(
                to_run, run_scenario, workers=workers, span="sweep.trial"
            )
        for outcome in outcome_stream:
            outcomes[outcome.index] = outcome
            if handle is not None:
                with tracer.span("sweep.checkpoint_append", item=outcome.index):
                    handle.write(_dump_line(outcome.to_record()))
                    handle.flush()
            if tracer.enabled:
                key = cell_of.get(outcome.index)
                now = perf_counter()
                cell_started.setdefault(key, now)
                cell_pending[key] -= 1
                if cell_pending[key] == 0:
                    tracer.record_span(
                        "sweep.cell",
                        cell_started[key],
                        now - cell_started[key],
                        cell="/".join(str(part) for part in key),
                    )
            done += 1
            if progress:
                progress(done, total)
    finally:
        if handle is not None:
            handle.close()
    ordered = [outcomes[spec.index] for spec in work_specs]
    return SweepResult(
        grid=grid, specs=list(work_specs), outcomes=ordered,
        resumed_trials=len(completed), shard=shard,
    )

"""The ``InitialState`` union — one currency for initial configurations.

Before this module, every backend factory (and ``make_simulation``,
``TrialSpec``, ``run_trials``) carried three mutually-exclusive kwargs —
``config=`` (state objects), ``codes=`` (encoded state codes) and
``counts=`` (an ``S``-length count vector) — plumbed in parallel through
every dispatch layer.  Each new engine quadruplicated the plumbing, and
callers holding an adversarial start had to know which representation the
backend preferred (the ``Backend.counts_native`` flag existed only to
answer that question).

An :class:`InitialState` collapses all of that into one value.  Each
member *is* one representation, and every member can materialize itself
into any representation on demand:

* :class:`ObjectConfig` — a list of state objects (the object engine's
  native form);
* :class:`CodeArray` — encoded state codes, the common currency of the
  vectorized adversary initializers;
* :class:`CountVector` — the ``O(S)`` aggregate form the counts engines
  consume natively;
* :class:`Clean` — ``n`` agents in the protocol's initial state,
  materialized in ``O(S)`` for counts consumers (no ``O(n)`` encode
  loop);
* :class:`SampledStart` — a *named adversary* plus a seed: the start is
  drawn lazily, in whichever representation the consumer asks for, from
  the law-matched initializer twins
  (:data:`repro.adversary.initializers.CODE_ADVERSARIES` /
  :data:`~repro.adversary.initializers.COUNTS_ADVERSARIES`).  This is
  what replaced the ``counts_native`` special-casing: the adversary
  produces an ``InitialState``, and the backend materializes its native
  form — the counts engines get the ``O(S)`` twin, everyone else the
  state-code form, without anyone naming a backend;
* :class:`Replicated` — a whole *trial batch*: ``trials`` rows, each an
  ``InitialState`` (one shared spec, or one per row).  Only batch engines
  (:mod:`repro.sim.batch_backend`) accept it; per-trial factories reject
  it with a clear error.

Factories ask for their native form (``to_config`` / ``to_codes`` /
``to_counts``); the object-engine paths are numpy-free, preserving the
numpy-optional object runtime.  Materialization is pure: a
:class:`SampledStart` builds a fresh generator from its seed on every
call, so the same value yields the same start on every backend and in
every process.

The old ``config=``/``codes=``/``counts=`` keyword triple rode a
one-release deprecation shim after the ``init=`` redesign and has now
been **removed**: :func:`require_init` validates the ``init=`` argument
and :func:`reject_removed_kwargs` turns any straggling legacy keyword
into a :class:`TypeError` that names the replacement, so old call sites
fail with a pointer instead of a generic signature error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, NoReturn, Optional, Sequence, Union

from repro.core.protocol import PopulationProtocol

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy

#: A materialized code array / count vector: a plain int sequence or a
#: numpy ``int64`` array.  Typed via TYPE_CHECKING so the numpy-free
#: object runtime never imports numpy to evaluate annotations.
Codes = Union[Sequence[int], "numpy.ndarray"]
Counts = Union[Sequence[int], "numpy.ndarray"]


class InitialState:
    """Base of the initial-configuration union (see the module docstring).

    Subclasses implement the three materializations.  ``to_config`` must
    stay numpy-free (the object runtime is numpy-optional); ``to_codes``
    and ``to_counts`` may require numpy, exactly as the engines that ask
    for them do.
    """

    __slots__ = ()

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        """Materialize as a list of *fresh* state objects (numpy-free)."""
        raise NotImplementedError

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        """Materialize as a sequence of encoded state codes."""
        raise NotImplementedError

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        """Materialize as an ``S``-length count vector."""
        raise NotImplementedError


def _require_num_states(protocol: PopulationProtocol) -> int:
    size = protocol.num_states()
    if size is None:
        raise ValueError(
            f"protocol '{protocol.name}' has no finite state encoding "
            "(num_states() is None), so its configurations have no "
            "codes/counts form"
        )
    return size


@dataclass(frozen=True)
class ObjectConfig(InitialState):
    """An explicit list of state objects (the object engine's native form)."""

    config: Sequence[Any]

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        return list(self.config)

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        encode = protocol.encode_state
        return [int(encode(state)) for state in self.config]

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        from repro.sim.counts_backend import counts_from_configuration

        return counts_from_configuration(protocol, list(self.config))


@dataclass(frozen=True)
class CodeArray(InitialState):
    """Encoded state codes — the vectorized initializers' common currency."""

    codes: Sequence[int]

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        # Range-checked against num_states() so invalid codes fail loudly
        # here exactly as they do on the vectorized engines — the
        # reference engine must not silently run what the others reject.
        size = protocol.num_states()
        decode = protocol.decode_state
        config = []
        for code in self.codes:
            code = int(code)
            if size is not None and not 0 <= code < size:
                raise ValueError(f"state code {code} outside range({size})")
            config.append(decode(code))
        return config

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        return self.codes

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        from repro.sim.counts_backend import counts_from_codes

        return counts_from_codes(protocol, self.codes)


@dataclass(frozen=True)
class CountVector(InitialState):
    """An ``S``-length count vector — the aggregate engines' native form."""

    counts: Sequence[int]

    def _validated(self, protocol: PopulationProtocol) -> list[int]:
        size = protocol.num_states()
        values = [int(count) for count in self.counts]
        if size is None or len(values) != size:
            raise ValueError(
                f"counts must have length num_states()={size}, got {len(values)}"
            )
        if any(count < 0 for count in values):
            raise ValueError("counts must be non-negative")
        return values

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        # Every agent gets its own decoded object — the object engine
        # mutates states in place, so the shared-object expansion the
        # counts backend uses for read-only predicates would alias
        # agents together here.
        decode = protocol.decode_state
        config: list[Any] = []
        for code, count in enumerate(self._validated(protocol)):
            for _ in range(count):
                config.append(decode(code))
        return config

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        from repro.sim.array_backend import require_numpy

        np = require_numpy()
        values = self._validated(protocol)
        vector = np.asarray(values, dtype=np.int64)
        return np.repeat(np.arange(vector.shape[0], dtype=np.int64), vector)

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        return self.counts


@dataclass(frozen=True)
class Clean(InitialState):
    """``n`` agents in the protocol's clean initial state."""

    n: int

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        return protocol.clean_configuration(self.n)

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        code = int(protocol.encode_state(protocol.initial_state()))
        return [code] * self.n

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        from repro.sim.array_backend import require_numpy

        np = require_numpy()
        # initial_state() is a nullary constructor, so a clean start is n
        # copies of one state — O(S), no per-agent encode loop.
        counts = np.zeros(_require_num_states(protocol), dtype=np.int64)
        counts[int(protocol.encode_state(protocol.initial_state()))] = self.n
        return counts


@dataclass(frozen=True)
class SampledStart(InitialState):
    """A named code-space adversary start, drawn lazily per representation.

    ``adversary`` names an entry of
    :data:`repro.adversary.initializers.CODE_ADVERSARIES`; consumers that
    ask for the ``O(S)`` form get the law-matched
    :data:`~repro.adversary.initializers.COUNTS_ADVERSARIES` twin where
    one exists.  Every materialization builds a fresh generator from
    ``seed`` (:func:`repro.adversary.initializers.code_rng`), so the
    draw is a pure function of this value — same start in every process,
    and the counts twin consumes an independent realization of the same
    law (exactly the contract the sweep's counts-native cells already
    relied on).
    """

    adversary: str
    n: int
    seed: int

    def _code_initializer(self):
        from repro.adversary.initializers import CODE_ADVERSARIES

        try:
            return CODE_ADVERSARIES[self.adversary]
        except KeyError:
            known = ", ".join(sorted(CODE_ADVERSARIES))
            raise ValueError(
                f"unknown code-space adversary '{self.adversary}' (known: {known})"
            ) from None

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        return CodeArray(self.to_codes(protocol)).to_config(protocol)

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        from repro.adversary.initializers import code_rng

        initializer = self._code_initializer()
        return initializer(protocol, code_rng(self.seed), self.n)

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        from repro.adversary.initializers import COUNTS_ADVERSARIES, code_rng

        self._code_initializer()  # unknown names fail identically everywhere
        twin = COUNTS_ADVERSARIES.get(self.adversary)
        if twin is None:
            from repro.sim.counts_backend import counts_from_codes

            return counts_from_codes(protocol, self.to_codes(protocol))
        return twin(protocol, code_rng(self.seed), self.n)


@dataclass(frozen=True)
class Replicated(InitialState):
    """A whole trial batch: ``trials`` rows of initial states.

    ``spec`` is either one :class:`InitialState` shared by every row or a
    sequence of exactly ``trials`` per-row states.  Only batch engines
    accept a ``Replicated`` — per-trial factories reject it, because a
    single simulation has no notion of rows.
    """

    spec: Union[InitialState, Sequence["InitialState"]]
    trials: int

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"a trial batch needs trials >= 1, got {self.trials}")
        if isinstance(self.spec, InitialState):
            if isinstance(self.spec, Replicated):
                raise ValueError("Replicated batches do not nest")
            return
        rows = tuple(self.spec)
        if len(rows) != self.trials:
            raise ValueError(
                f"per-row specs must match trials={self.trials}, got {len(rows)}"
            )
        for row in rows:
            if not isinstance(row, InitialState) or isinstance(row, Replicated):
                raise ValueError(
                    "every row of a Replicated batch must be a non-batch InitialState"
                )
        object.__setattr__(self, "spec", rows)

    def row(self, index: int) -> InitialState:
        """The initial state of batch row ``index``."""
        if isinstance(self.spec, InitialState):
            return self.spec
        return self.spec[index]

    def _reject(self) -> NoReturn:
        raise ValueError(
            f"a Replicated initial state describes a batch of {self.trials} "
            "trials; only batch engines (e.g. backend='batch') accept it"
        )

    def to_config(self, protocol: PopulationProtocol) -> list[Any]:
        self._reject()

    def to_codes(self, protocol: PopulationProtocol) -> Codes:
        self._reject()

    def to_counts(self, protocol: PopulationProtocol) -> Counts:
        self._reject()


#: Legacy keyword → the InitialState member that replaced it.  The shim
#: that *translated* these shipped for exactly one release (PR 6); what
#: remains is the clear rejection below.
_REMOVED_KWARGS: dict[str, str] = {
    "config": "ObjectConfig",
    "codes": "CodeArray",
    "counts": "CountVector",
    "config_factory": "a per-trial init= factory returning ObjectConfig",
    "codes_factory": "a per-trial init= factory returning CodeArray",
    "counts_factory": "a per-trial init= factory returning CountVector",
}


def require_init(init: Optional[InitialState]) -> Optional[InitialState]:
    """Validate an ``init=`` argument (``None`` = clean ``n``-agent start)."""
    if init is not None and not isinstance(init, InitialState):
        raise TypeError(
            f"init= must be an InitialState, got {type(init).__name__}; "
            "see repro.sim.initial_state"
        )
    return init


def reject_positional(
    where: str, misused: Sequence[Any], keywords: Sequence[str]
) -> None:
    """Raise a pointed :class:`TypeError` for positionally-passed config args.

    The entry points' configuration arguments are keyword-only —
    ``run_trials(protocol, predicate, 64, 5)`` would otherwise silently
    bind ``n``-shaped ints to whatever parameter happens to come first.
    ``misused`` is the ``*``-collected tuple of stray positionals;
    ``keywords`` names the keyword-only parameters in declaration order,
    so the message shows exactly the spelling the caller meant.
    """
    if not misused:
        return
    shown = ", ".join(f"{name}=..." for name in list(keywords)[: len(misused)])
    count = len(misused)
    raise TypeError(
        f"{where}() takes its configuration arguments keyword-only; got "
        f"{count} positional value{'s' if count != 1 else ''} — "
        f"pass {shown} by name"
    )


def reject_removed_kwargs(where: str, kwargs: dict[str, Any]) -> None:
    """Raise a pointed :class:`TypeError` for the removed keyword shim.

    ``kwargs`` is a ``**``-collected dict of unexpected keywords; legacy
    names get a message that names the ``init=`` replacement, anything
    else the ordinary unexpected-keyword error.
    """
    if not kwargs:
        return
    name = next(iter(kwargs))
    replacement = _REMOVED_KWARGS.get(name)
    if replacement is not None:
        raise TypeError(
            f"{where}() no longer accepts {name}= (the one-release "
            f"deprecation shim has been removed); pass init= with "
            f"{replacement} instead (repro.sim.initial_state)"
        )
    raise TypeError(f"{where}() got an unexpected keyword argument {name!r}")


__all__ = [
    "Clean",
    "CodeArray",
    "CountVector",
    "InitialState",
    "ObjectConfig",
    "Replicated",
    "SampledStart",
    "reject_positional",
    "reject_removed_kwargs",
    "require_init",
]

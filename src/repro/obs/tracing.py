"""Span tracer: nested spans on monotonic clocks, JSONL sink, no-op off.

This module is the repository's single home for wall-clock reads.  Every
engine, benchmark and coordinator that needs a timestamp imports
:data:`perf_counter` from here (lint rule L007 rejects direct
``time.time``/``time.perf_counter`` calls anywhere else), and every
execution surface reports *where the time went* through spans:

* :func:`get_tracer` returns the process tracer.  With ``REPRO_TRACE``
  unset it is the shared :data:`NULL_TRACER` — ``enabled`` is ``False``
  and ``span()``/``event()`` return one preallocated no-op object, so a
  hot loop pays a single attribute check and nothing else.
* ``REPRO_TRACE=path`` (or the CLI's ``--trace``, which sets the same
  variable so worker processes inherit it) switches to a real
  :class:`Tracer` appending one JSON object per line to ``path``.
  Lines are written whole through an ``O_APPEND`` descriptor, so
  concurrent writers (the pool coordinator plus its workers) interleave
  at line granularity, never mid-record.
* :class:`SpanBuffer` is the cross-process variant: a worker collects
  span records in memory and ships them back with its result, and the
  parent writes them at the reorder buffer's in-order yield point — so
  the trace file order is deterministic even though workers race.

The non-negotiable invariant: tracing never touches an RNG stream and
never changes results.  Spans only read the monotonic clock; traced and
untraced runs are bit-identical on every backend (gated by
``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional

#: The blessed monotonic clock.  Engines and benchmarks must import it
#: from here (L007), so timing reads are greppable and mockable in one
#: place.
perf_counter = time.perf_counter

#: Environment variable naming the JSONL trace sink.  Empty/unset = off.
TRACE_ENV = "REPRO_TRACE"

#: Canonical per-step phase names shared by every engine's
#: ``instrument_steps`` breakdown (draw pairs / match rows / apply the
#: law / retire converged work).
STEP_PHASES: tuple[str, ...] = ("draw", "match", "apply", "retire")


class _NullSpan:
    """The do-nothing span: one shared instance, zero allocation per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def event(self, name: str, **labels: Any) -> None:
        return None

    def annotate(self, **labels: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a preallocated no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **labels: Any) -> None:
        return None

    def record_span(
        self, name: str, start: float, duration: float, **labels: Any
    ) -> None:
        return None

    def write_record(self, record: dict) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """A live span: context manager that stamps itself on exit."""

    __slots__ = ("_tracer", "name", "labels", "span_id", "parent_id", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, labels: dict, parent_id: Optional[str]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.labels = labels
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = perf_counter()
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer.write_record(
            {
                "kind": "span",
                "name": self.name,
                "ts": self._start - self._tracer.epoch,
                "dur": end - self._start,
                "pid": os.getpid(),
                "id": self.span_id,
                "parent": self.parent_id,
                "labels": self.labels,
            }
        )

    def event(self, name: str, **labels: Any) -> None:
        """An instant event attributed to this span."""
        self._tracer._emit_event(name, labels, parent=self.span_id)

    def annotate(self, **labels: Any) -> None:
        """Attach labels discovered mid-span (merged into the record)."""
        self.labels.update(labels)


class Tracer:
    """A live tracer appending one JSON record per line to a sink file."""

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = str(path)
        #: Span timestamps are relative to this per-process origin, so a
        #: record never embeds absolute wall-clock (keeps checkpoints'
        #: no-timestamp discipline out of reach of accidental reuse).
        self.epoch = perf_counter()
        self._stack: list[Span] = []
        self._sequence = 0
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def _next_id(self) -> str:
        self._sequence += 1
        return f"{os.getpid()}:{self._sequence}"

    def span(self, name: str, **labels: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        return Span(self, name, labels, parent)

    def event(self, name: str, **labels: Any) -> None:
        parent = self._stack[-1].span_id if self._stack else None
        self._emit_event(name, labels, parent=parent)

    def _emit_event(self, name: str, labels: dict, parent: Optional[str]) -> None:
        self.write_record(
            {
                "kind": "event",
                "name": name,
                "ts": perf_counter() - self.epoch,
                "pid": os.getpid(),
                "parent": parent,
                "labels": labels,
            }
        )

    def record_span(
        self, name: str, start: float, duration: float, **labels: Any
    ) -> None:
        """Write a span with explicit endpoints (for reconstructed spans,
        e.g. a sweep cell whose trials landed across the reorder buffer)."""
        self.write_record(
            {
                "kind": "span",
                "name": name,
                "ts": start - self.epoch,
                "dur": duration,
                "pid": os.getpid(),
                "id": self._next_id(),
                "parent": None,
                "labels": labels,
            }
        )

    def write_record(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        # One os.write of a whole line on an O_APPEND descriptor: POSIX
        # appends atomically, so concurrent processes interleave lines,
        # never bytes.
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


class SpanBuffer(Tracer):
    """A tracer that buffers records in memory instead of writing a file.

    Workers run their trial under a ``SpanBuffer`` and return
    ``buffer.records`` alongside the result; the parent process writes
    them to the real sink at the reorder buffer's in-order yield, which
    makes the merged trace order a pure function of the work list.
    """

    def __init__(self) -> None:
        self.path = "<buffer>"
        self.epoch = 0.0  # keep worker timestamps on the raw monotonic clock
        self._stack = []
        self._sequence = 0
        self._fd = -1
        self.records: list[dict] = []

    def write_record(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        return None


_tracer: Optional[object] = None
_tracer_key: Optional[str] = None


def get_tracer():
    """The process tracer: a :class:`Tracer` when ``REPRO_TRACE`` names a
    file, else the shared no-op :data:`NULL_TRACER`.  Memoized until the
    environment value changes (see :func:`configure_tracing`)."""
    global _tracer, _tracer_key
    key = os.environ.get(TRACE_ENV) or None
    if _tracer is None or key != _tracer_key:
        if _tracer is not None and isinstance(_tracer, Tracer):
            _tracer.close()
        _tracer = Tracer(key) if key else NULL_TRACER
        _tracer_key = key
    return _tracer


def configure_tracing(path: Optional[str]) -> None:
    """Select the trace sink programmatically (the CLI's ``--trace``).

    Sets/clears ``REPRO_TRACE`` — through the environment on purpose, so
    worker processes spawned later inherit the same sink — and resets the
    memoized tracer.
    """
    if path:
        os.environ[TRACE_ENV] = str(path)
    else:
        os.environ.pop(TRACE_ENV, None)
    get_tracer()

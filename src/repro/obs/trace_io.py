"""Trace-file loading, summarizing, and Chrome trace-event export.

The sink format (one JSON object per line, written by
:class:`repro.obs.tracing.Tracer`) is deliberately dumb; this module is
where it becomes useful:

* :func:`load_trace` — parse a JSONL trace, failing loudly
  (:class:`TraceError`) on missing or corrupt files;
* :func:`summarize_trace` — top spans by total/self time, per-phase
  tables from ``step.*`` spans, and per-shard lease timelines from the
  pool's ``pool.lease.*`` events;
* :func:`to_chrome_trace` — the Chrome trace-event JSON document
  (``ph: "X"`` complete spans + ``ph: "i"`` instants) that Perfetto and
  ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

__all__ = [
    "TraceError",
    "load_trace",
    "render_summary_text",
    "summarize_trace",
    "to_chrome_trace",
]


class TraceError(Exception):
    """A trace file that cannot be loaded (missing, empty, or corrupt)."""


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace file into its record dicts, in file order."""
    trace_path = Path(path)
    if not trace_path.is_file():
        raise TraceError(f"{trace_path}: no such trace file")
    records: list[dict] = []
    with trace_path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{trace_path}:{lineno}: not a JSON trace record ({error.msg})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceError(
                    f"{trace_path}:{lineno}: not a trace record "
                    "(expected an object with a 'kind' field)"
                )
            records.append(record)
    if not records:
        raise TraceError(f"{trace_path}: empty trace (no records)")
    return records


def _span_rows(spans: list[dict]) -> list[dict]:
    """Aggregate spans by name: count, total, and self time (total minus
    the duration of direct children, via the parent links)."""
    child_time: dict[Optional[str], float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + span.get("dur", 0.0)
    totals: dict[str, dict] = {}
    for span in spans:
        name = span.get("name", "?")
        entry = totals.setdefault(
            name, {"name": name, "count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        duration = span.get("dur", 0.0)
        entry["count"] += 1
        entry["total_s"] += duration
        entry["self_s"] += max(0.0, duration - child_time.get(span.get("id"), 0.0))
    rows = sorted(totals.values(), key=lambda row: -row["total_s"])
    for row in rows:
        row["total_s"] = round(row["total_s"], 6)
        row["self_s"] = round(row["self_s"], 6)
    return rows


def _phase_rows(spans: list[dict]) -> list[dict]:
    """Per-phase table from ``step.<phase>`` spans (engine breakdowns)."""
    # Imported here to keep trace_io importable without the tracing side
    # of the package having initialized anything.
    from repro.obs.metrics import step_breakdown_rows

    timings: dict[str, float] = {}
    for span in spans:
        name = span.get("name", "")
        if name.startswith("step."):
            phase = name[len("step."):]
            timings[phase] = timings.get(phase, 0.0) + span.get("dur", 0.0)
    return step_breakdown_rows(timings) if timings else []


def _lease_timelines(events: list[dict]) -> dict[str, list[dict]]:
    """Per-shard lease timelines from the pool's ``pool.lease.*`` events."""
    timelines: dict[str, list[dict]] = {}
    for event in events:
        name = event.get("name", "")
        if not name.startswith("pool.lease."):
            continue
        labels = event.get("labels", {}) or {}
        shard = labels.get("shard")
        key = str(shard) if shard is not None else "?"
        timelines.setdefault(key, []).append(
            {
                "ts": round(event.get("ts", 0.0), 6),
                "state": name[len("pool.lease."):],
                **{k: v for k, v in labels.items() if k != "shard"},
            }
        )
    return {shard: timelines[shard] for shard in sorted(timelines, key=_shard_order)}


def _shard_order(key: str):
    return (0, int(key)) if key.isdigit() else (1, key)


def summarize_trace(records: list[dict]) -> dict:
    """The summary document behind ``repro trace``."""
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    return {
        "records": len(records),
        "spans": len(spans),
        "events": len(events),
        "processes": sorted({r.get("pid") for r in records if r.get("pid") is not None}),
        "top_spans": _span_rows(spans),
        "step_phases": _phase_rows(spans),
        "lease_timelines": _lease_timelines(events),
    }


def render_summary_text(summary: dict) -> str:
    """Human rendering of :func:`summarize_trace`'s document."""
    lines = [
        f"trace: {summary['records']} records "
        f"({summary['spans']} spans, {summary['events']} events, "
        f"{len(summary['processes'])} processes)"
    ]
    if summary["top_spans"]:
        lines.append("")
        lines.append(f"{'span':<28} {'count':>7} {'total_s':>10} {'self_s':>10}")
        for row in summary["top_spans"][:15]:
            lines.append(
                f"{row['name']:<28} {row['count']:>7} "
                f"{row['total_s']:>10.4f} {row['self_s']:>10.4f}"
            )
    if summary["step_phases"]:
        lines.append("")
        lines.append(f"{'phase':<10} {'seconds':>10} {'share':>7}")
        for row in summary["step_phases"]:
            lines.append(
                f"{row['phase']:<10} {row['seconds']:>10.4f} {row['share']:>7}"
            )
    for shard, timeline in summary["lease_timelines"].items():
        lines.append("")
        lines.append(f"shard {shard}:")
        for entry in timeline:
            extras = " ".join(
                f"{key}={value}"
                for key, value in entry.items()
                if key not in ("ts", "state")
            )
            suffix = f" {extras}" if extras else ""
            lines.append(f"  {entry['ts']:>10.4f}s {entry['state']}{suffix}")
    return "\n".join(lines)


def to_chrome_trace(records: list[dict]) -> dict:
    """The Chrome trace-event document (Perfetto / ``chrome://tracing``).

    Spans become ``ph: "X"`` complete events and instant events become
    ``ph: "i"``; timestamps and durations are microseconds per the
    format, one ``tid`` per source process.
    """
    trace_events = []
    for record in records:
        pid = record.get("pid", 0)
        base = {
            "name": record.get("name", "?"),
            "ts": record.get("ts", 0.0) * 1e6,
            "pid": pid,
            "tid": pid,
            "args": record.get("labels", {}) or {},
        }
        if record.get("kind") == "span":
            trace_events.append(
                {**base, "ph": "X", "dur": record.get("dur", 0.0) * 1e6}
            )
        elif record.get("kind") == "event":
            trace_events.append({**base, "ph": "i", "s": "p"})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

"""repro.obs — the tracing + metrics substrate (see README "Observability").

One package owns every wall-clock read and every metric emission in the
repository (enforced statically by lint rule L007):

* :mod:`repro.obs.tracing` — nested spans on monotonic clocks, the
  ``REPRO_TRACE`` JSONL sink, the shared no-op tracer when disabled,
  and :class:`SpanBuffer` for shipping worker spans across the process
  boundary;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms plus
  the shared ``instrument_steps`` breakdown formatter;
* :mod:`repro.obs.trace_io` — trace loading, the ``repro trace``
  summary, and Chrome trace-event export.

Tracing never touches an RNG stream: traced and untraced runs are
bit-identical on every backend.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    get_metrics,
    step_breakdown_rows,
)
from repro.obs.trace_io import (
    TraceError,
    load_trace,
    render_summary_text,
    summarize_trace,
    to_chrome_trace,
)
from repro.obs.tracing import (
    NULL_TRACER,
    STEP_PHASES,
    TRACE_ENV,
    NullTracer,
    Span,
    SpanBuffer,
    Tracer,
    configure_tracing,
    get_tracer,
    perf_counter,
)

__all__ = [
    # tracing
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanBuffer",
    "STEP_PHASES",
    "TRACE_ENV",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "perf_counter",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "get_metrics",
    "step_breakdown_rows",
    # trace IO
    "TraceError",
    "load_trace",
    "render_summary_text",
    "summarize_trace",
    "to_chrome_trace",
]

"""Labeled metrics registry: counters, gauges, histograms, stopwatches.

Benchmarks and engines publish numbers through this registry instead of
hand-rolling ``t0 = time.perf_counter()`` pairs (L007 rejects the raw
clock outside ``repro.obs``).  The instruments are deliberately small —
a benchmark's ``update_perf_summary`` payload is a :meth:`snapshot`
away, and the shared :func:`step_breakdown_rows` formatter is what the
E22/E24 per-phase tables render through instead of duplicating the
percentage arithmetic.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.obs.tracing import STEP_PHASES, perf_counter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "get_metrics",
    "step_breakdown_rows",
]


def _labels_key(labels: Mapping[str, Any]) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A streaming summary: count / sum / min / max of observations."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Stopwatch:
    """Context manager reading the blessed clock once on each side.

    ``with registry.stopwatch("phase") as sw: ...`` then ``sw.seconds``;
    the elapsed time is also observed into the named histogram.
    """

    __slots__ = ("_histogram", "_start", "seconds")

    def __init__(self, histogram: Optional[Histogram]) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.seconds)


class MetricsRegistry:
    """Instruments keyed by ``(name, sorted labels)``."""

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter(name, labels)
        return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, labels)
        return self._gauges[key]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _labels_key(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram(name, labels)
        return self._histograms[key]

    def stopwatch(self, name: Optional[str] = None, **labels: Any) -> Stopwatch:
        return Stopwatch(self.histogram(name, **labels) if name else None)

    def snapshot(self) -> dict:
        """A plain-dict dump, ready for a perf-summary payload."""

        def _dump(instruments: Iterable) -> list[dict]:
            rows = []
            for metric in instruments:
                row: dict[str, Any] = {"name": metric.name}
                if metric.labels:
                    row["labels"] = dict(metric.labels)
                if isinstance(metric, Histogram):
                    row.update(
                        count=metric.count,
                        sum=metric.total,
                        min=metric.min,
                        max=metric.max,
                        mean=metric.mean,
                    )
                else:
                    row["value"] = metric.value
                rows.append(row)
            return rows

        return {
            "counters": _dump(self._counters.values()),
            "gauges": _dump(self._gauges.values()),
            "histograms": _dump(self._histograms.values()),
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (one per process; workers ship spans,
    not metrics, across the boundary)."""
    return _registry


def step_breakdown_rows(timings: Mapping[str, float]) -> list[dict]:
    """The shared per-phase table for an ``instrument_steps`` breakdown.

    Returns ``{"phase", "seconds", "share"}`` rows in canonical
    :data:`STEP_PHASES` order (extra phases follow, in input order) —
    the one formatter behind the E22/E24 benchmark tables.
    """
    ordered = [phase for phase in STEP_PHASES if phase in timings]
    ordered += [phase for phase in timings if phase not in STEP_PHASES]
    total = sum(timings.values())
    return [
        {
            "phase": phase,
            "seconds": round(timings[phase], 4),
            "share": f"{(timings[phase] / total * 100) if total else 0.0:.0f}%",
        }
        for phase in ordered
    ]

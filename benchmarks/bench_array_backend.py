"""E18/E19 — Array-backend speedup gate and cross-backend equivalence.

The vectorized numpy backend (:mod:`repro.sim.array_backend`) exists to
make n ≥ 10³–10⁴ leader-election workloads cheap; this benchmark is its
regression gate, run by CI's ``bench-perf`` job:

* **E18 (speedup)** — every finite-state leader-election workload at
  n=4096 must run ≥ 3× faster on the array backend than on the object
  backend (a deliberately generous threshold — measured speedups are
  5–30× — so loaded shared runners don't flake).  The headline row is the
  Cai–Izumi–Wada ``n``-state SSLE protocol: the finite-state stand-in for
  the ``elect_leader`` workload, since ``ElectLeader_r`` itself prices
  its speed at ``2^{O(r² log n)}`` states (Theorem 1.1) and therefore has
  no transition table to vectorize — E18 also asserts that requesting
  the array backend for it fails loudly rather than silently degrading.
  Results additionally land in ``benchmarks/results/perf-summary.json``
  for the CI artifact.

* **E19 (equivalence)** — for every protocol exposing a transition
  table: object- and array-backend runs reach the same convergence
  verdict, replaying one ``RecordedSchedule`` agrees *exactly* (the
  conflict-safe block application is bit-faithful to sequential order),
  and multi-trial stabilization-time distributions are statistically
  indistinguishable (overlapping bootstrap CIs for the median).
"""

from __future__ import annotations


from conftest import FAST, run_once, update_perf_summary

from repro.analysis.stats import bootstrap_ci
from repro.baselines.cai_izumi_wada import CaiIzumiWada
from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.propagate_reset import ResetEpidemicProtocol
from repro.obs import perf_counter
from repro.scheduler.rng import make_rng
from repro.scheduler.scheduler import RecordedSchedule
from repro.sim.array_backend import (
    ArrayBackendError,
    ArraySimulation,
    replay_array,
    transition_table_for,
)
from repro.sim.initial_state import ObjectConfig
from repro.sim.replay import replay
from repro.sim.simulation import Simulation
from repro.sim.trials import run_trials

N = 1024 if FAST else 4096
BUDGET = 200_000 if FAST else 2_000_000
#: The acceptance bar (≥ 3×) applies at the full n=4096 configuration;
#: FAST smoke runs use a lenient floor so loaded runners don't flake.
SPEEDUP_FLOOR = 1.5 if FAST else 3.0


def _workloads(n: int):
    """(name, protocol, start configuration) for each array-capable
    leader-election-family workload at population size ``n``."""
    ciw = CaiIzumiWada(BaselineParams(n=n))
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=n))
    reset = ResetEpidemicProtocol(ProtocolParams(n=n, r=4))
    pairwise = PairwiseElimination(n)
    return [
        ("cai_izumi_wada", ciw, ciw.adversarial_configuration(make_rng(11))),
        ("loosely_stabilizing", loose, loose.clean_configuration(n)),
        ("reset_epidemic", reset, reset.triggered_configuration(n)),
        ("pairwise_elimination", pairwise, pairwise.clean_configuration(n)),
    ]


def test_e18_array_backend_speedup(benchmark, record_table):
    def experiment():
        rows = []
        for name, protocol, start in _workloads(N):
            t0 = perf_counter()
            transition_table_for(protocol)  # built once, cached; excluded from hot path
            build_s = perf_counter() - t0

            object_sim = Simulation(protocol, config=[s.clone() for s in start], seed=3)
            t0 = perf_counter()
            object_sim.run_batch(BUDGET)
            object_s = perf_counter() - t0

            array_sim = ArraySimulation(protocol, config=[s.clone() for s in start], seed=3)
            t0 = perf_counter()
            array_sim.run_batch(BUDGET)
            array_s = perf_counter() - t0

            rows.append(
                {
                    "workload": name,
                    "n": N,
                    "interactions": BUDGET,
                    "states": protocol.num_states(),
                    "table_build_s": round(build_s, 3),
                    "object_s": round(object_s, 3),
                    "array_s": round(array_s, 3),
                    "speedup": round(object_s / array_s, 2) if array_s > 0 else float("inf"),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E18_array_backend",
        rows,
        f"E18: object vs array backend wall-clock (n={N}, {BUDGET} interactions)",
    )
    update_perf_summary(
        "E18_array_backend",
        {
            "experiment": "E18_array_backend",
            "n": N,
            "interactions": BUDGET,
            "fast_mode": FAST,
            "speedup_floor": SPEEDUP_FLOOR,
            "rows": rows,
        },
    )

    # ElectLeader_r has no finite encoding: the array backend must refuse
    # it loudly, never silently fall back to something slower or wrong.
    elect = ElectLeader(ProtocolParams(n=64, r=4))
    try:
        ArraySimulation(elect, n=64, seed=0)
    except ArrayBackendError:
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("ElectLeader must be rejected by the array backend")

    for row in rows:
        assert row["speedup"] >= SPEEDUP_FLOOR, rows


# ---------------------------------------------------------------------------
# E19: cross-backend equivalence
# ---------------------------------------------------------------------------

#: (protocol builder, predicate attr, start builder, budget) per protocol —
#: small-n workloads that converge on both backends within the budget.
def _equivalence_cases():
    n = 24
    ciw = CaiIzumiWada(BaselineParams(n=12))
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=n), tau=2.0)
    pairwise = PairwiseElimination(n)
    reset = ResetEpidemicProtocol(ProtocolParams(n=16, r=2))
    return [
        ("cai_izumi_wada", ciw, 12, ciw.is_silent_configuration,
         lambda rng: ciw.adversarial_configuration(rng), 2_000_000),
        ("loosely_stabilizing", loose, n, loose.is_goal_configuration,
         lambda rng: loose.adversarial_configuration(rng), 400_000),
        ("pairwise_elimination", pairwise, n, pairwise.is_goal_configuration,
         lambda rng: None, 400_000),
        ("reset_epidemic", reset, 16, reset.is_goal_configuration,
         lambda rng: reset.triggered_configuration(16, 3), 400_000),
    ]


def test_e19_cross_backend_equivalence(benchmark, record_table):
    def experiment():
        rows = []
        trials = 8 if FAST else 20
        for name, protocol, n, predicate, config_of, budget in _equivalence_cases():
            # Exact-trajectory agreement under a recorded schedule.
            schedule = RecordedSchedule.record(n, 2_000, make_rng(5))
            start = config_of(make_rng(7)) or protocol.clean_configuration(n)
            via_object = replay(protocol, [s.clone() for s in start], schedule)
            via_array = replay_array(protocol, [s.clone() for s in start], schedule)
            encode = protocol.encode_state
            replay_exact = [encode(s) for s in via_object] == [encode(s) for s in via_array]

            summaries = {}
            for backend in ("object", "array"):
                summaries[backend] = run_trials(
                    protocol,
                    predicate,
                    n=n,
                    trials=trials,
                    max_interactions=budget,
                    seed=31,
                    check_interval=64,
                    init=(
                        (lambda index: ObjectConfig(config_of(make_rng(1000 + index))))
                        if config_of(make_rng(0)) is not None else None
                    ),
                    label=f"{name}/{backend}",
                    backend=backend,
                )
            object_summary = summaries["object"]
            array_summary = summaries["array"]
            ci_object = bootstrap_ci(object_summary.interactions, rng=make_rng(1))
            ci_array = bootstrap_ci(array_summary.interactions, rng=make_rng(2))
            overlap = ci_object.low <= ci_array.high and ci_array.low <= ci_object.high
            rows.append(
                {
                    "protocol": name,
                    "n": n,
                    "trials": trials,
                    "replay_exact": replay_exact,
                    "object_success": object_summary.success_rate,
                    "array_success": array_summary.success_rate,
                    "object_median": object_summary.median_interactions,
                    "array_median": array_summary.median_interactions,
                    "median_ci_overlap": overlap,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E19_backend_equivalence",
        rows,
        "E19: cross-backend equivalence (verdicts, replay, time distributions)",
    )
    for row in rows:
        assert row["replay_exact"], row
        assert row["object_success"] == row["array_success"] == 1.0, row
        assert row["median_ci_overlap"], row

"""E23 — the distributed sweep fabric as a workload.

One grid, three execution paths, one equality gate:

* **serial** — the reference ``run_sweep`` checkpoint;
* **shard+merge** — every shard executed in-process via the fabric's
  deterministic partition, then ``merge_checkpoints`` reconstituting the
  unsharded file;
* **pool** — the lease-based coordinator driving real ``python -m repro``
  worker subprocesses over the local provider.

All three must produce byte-identical checkpoints; the table reports the
wall clock each path paid for them.  This is the benchmark twin of the
CI shard/merge/pool smoke, at experiment scale rather than smoke scale.
"""

from __future__ import annotations


from conftest import fast_scaled, run_once

from repro.fabric import merge_checkpoints, run_pool, shard_grid
from repro.obs import perf_counter
from repro.sim.sweep import GridSpec, expand_grid, run_sweep

E23_SHARDS = 4

E23_GRID = GridSpec(
    protocols=("elect_leader", "pairwise_elimination"),
    ns=fast_scaled((16, 24, 32), (12, 16)),
    rs=(2, 4),
    adversaries=("clean", "random_soup"),
    fault_rates=(0.0,),
    trials=fast_scaled(5, 2),
    seed=2300,
    max_interactions=fast_scaled(2_000_000, 500_000),
    check_interval=2_000,
)


def test_e23_fabric_shard_merge_pool_identity(benchmark, record_table, tmp_path):
    def experiment():
        rows = []
        trials = len(expand_grid(E23_GRID))

        def timed(label, fn):
            start = perf_counter()
            fn()
            rows.append(
                {
                    "mode": label,
                    "trials": trials,
                    "shards": E23_SHARDS if label != "serial" else 1,
                    "wall_s": round(perf_counter() - start, 2),
                }
            )

        serial = tmp_path / "serial.jsonl"
        timed("serial", lambda: run_sweep(E23_GRID, jsonl_path=serial))

        def shard_and_merge():
            paths = []
            for index in range(E23_SHARDS):
                path = tmp_path / f"shard-{index}.jsonl"
                result = run_sweep(E23_GRID, jsonl_path=path, shard=(index, E23_SHARDS))
                assert [spec.index for spec in result.specs] == [
                    spec.index for spec in shard_grid(E23_GRID, index, E23_SHARDS)
                ]
                paths.append(path)
            merge_checkpoints(paths, tmp_path / "merged.jsonl", grid=E23_GRID)

        timed("shard+merge", shard_and_merge)
        assert (tmp_path / "merged.jsonl").read_bytes() == serial.read_bytes()

        def pooled():
            result = run_pool(
                E23_GRID,
                out=tmp_path / "pool.jsonl",
                workers=2,
                shards=E23_SHARDS,
                backoff=0.0,
            )
            assert result.ok

        timed("pool", pooled)
        assert (tmp_path / "pool.jsonl").read_bytes() == serial.read_bytes()
        return rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E23_fabric",
        rows,
        f"E23: fabric identity gate — serial vs {E23_SHARDS}-shard merge vs pool "
        f"({len(expand_grid(E23_GRID))} trials)",
    )

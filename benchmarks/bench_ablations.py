"""E13 — Ablations of the paper's design choices.

The paper motivates three mechanisms explicitly; each ablation removes or
weakens one and measures what breaks:

* **Load balancing** (Section 3.1: "Without such a mechanism, the
  messages would stay clumped together") — disabling ``BalanceLoad``
  should slow single-duplicate detection substantially.
* **Message amplification** (Section 3.1: messages exist to beat the
  ``Ω(n)``-time direct-meeting bound) — shrinking the per-rank pool
  (``msg_factor``) weakens the amplification.
* **Probation** (Section 3.2: a too-short probation lets genuine
  collisions masquerade as initialization errors forever) — with
  ``P_max`` far below the detection time, recovery from duplicate ranks
  must degrade (soft-reset churn instead of the decisive hard reset).

Each row reports detection/recovery medians with the mechanism on vs.
ablated; assertions pin the direction of the effect.
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.adversary.initializers import duplicate_ranks
from repro.core.detect_collision import DetectCollisionProtocol
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation

N = 36
R = 6
TRIALS = 12


def _single_duplicate_config(protocol: DetectCollisionProtocol, seed: int):
    config = [protocol.state_for_rank(rank) for rank in range(1, protocol.n + 1)]
    rng = make_rng(seed)
    victim = rng.randrange(protocol.n - 1)
    config[victim] = protocol.state_for_rank(config[victim].rank + 1)
    return config


def _detection_median(
    protocol: DetectCollisionProtocol, seed_base: int, budget: int
) -> tuple[float, float]:
    times = []
    successes = 0
    for trial in range(TRIALS):
        config = _single_duplicate_config(protocol, derive_seed(seed_base, trial))
        sim = Simulation(protocol, config=config, seed=derive_seed(seed_base + 1, trial))
        result = sim.run_until(protocol.error_detected, max_interactions=budget, check_interval=50)
        if result.converged:
            successes += 1
            times.append(result.interactions)
    median = statistics.median(times) if times else float("inf")
    return median, successes / TRIALS


def test_e13a_load_balancing_ablation(benchmark, record_table):
    """Dispersal ablation, run in the ``r = Θ(n)`` regime where the message
    mechanism's advantage over the ``Ω(n)``-time direct-meeting bound
    materializes (at ``r ≪ n``, intra-group interactions are so rare that
    every variant degenerates to direct meeting).  Disabling
    ``BalanceLoad`` on the *pre-mixed* start matters only mildly — the
    initial allocation already spreads messages, which is exactly why the
    paper pre-mixes (footnote 2); removing *both* dispersal mechanisms
    (clumped start, no balancing) collapses detection to the
    direct-meeting bound."""

    def experiment():
        n, r = 64, 32
        budget = 3_000_000
        variants = [
            ("premixed+balance (paper)", dict(balance=True, premixed=True)),
            ("premixed, no balance", dict(balance=False, premixed=True)),
            ("clumped+balance", dict(balance=True, premixed=False)),
            ("clumped, no balance", dict(balance=False, premixed=False)),
        ]
        rows = []
        for index, (label, kwargs) in enumerate(variants):
            protocol = DetectCollisionProtocol(ProtocolParams(n=n, r=r), **kwargs)
            median, rate = _detection_median(protocol, 13_000 + 10 * index, budget)
            rows.append(
                {"variant": label, "n": n, "r": r,
                 "success": rate, "median_detection": median}
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E13a_load_balancing", rows, "E13a: dispersal ablation (single duplicate)")
    by_variant = {row["variant"]: row for row in rows}
    assert by_variant["premixed+balance (paper)"]["success"] == 1.0
    paper = float(by_variant["premixed+balance (paper)"]["median_detection"])
    clumped_off = float(by_variant["clumped, no balance"]["median_detection"])
    clumped_on = float(by_variant["clumped+balance"]["median_detection"])
    # Without any dispersal mechanism detection degrades toward the
    # direct-meeting bound the message system exists to beat (Sec 3.1).
    assert clumped_off > 1.5 * paper, rows
    # Balancing recovers most of the loss even from the clumped start.
    assert clumped_on < clumped_off, rows


def test_e13b_message_pool_ablation(benchmark, record_table):
    def experiment():
        rows = []
        budget = 3_000_000
        for msg_factor in (1, 2, 4):
            params = ProtocolParams(n=N, r=R, msg_factor=msg_factor)
            protocol = DetectCollisionProtocol(params)
            median, rate = _detection_median(protocol, 13_200 + msg_factor, budget)
            rows.append(
                {
                    "msg_factor": msg_factor,
                    "messages_per_rank": params.messages_per_rank(R),
                    "success": rate,
                    "median_detection": median,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E13b_message_pool", rows, "E13b: message-pool-size ablation")
    assert all(row["success"] >= 0.9 for row in rows)
    # Bigger pools detect (weakly) faster: compare the extremes.
    assert float(rows[-1]["median_detection"]) <= 1.3 * float(rows[0]["median_detection"])


def test_e13c_probation_ablation(benchmark, record_table):
    def experiment():
        rows = []
        # Healthy probation vs. one far below the detection time.
        for label, overrides in (
            ("paper_constants", {}),
            ("probation_too_short", {"c_prob": 0.01, "c_prob_floor": 0.5}),
        ):
            params = ProtocolParams(n=N, r=R, **overrides)
            protocol = ElectLeader(params)
            budget = 2_000_000
            recovered = 0
            times = []
            soft_resets = []
            for trial in range(TRIALS):
                protocol.reset_events()
                config = duplicate_ranks(protocol, make_rng(derive_seed(13_300, trial)), 2)
                sim = Simulation(protocol, config=config, seed=derive_seed(13_400, trial))
                result = sim.run_until(
                    protocol.is_safe_configuration,
                    max_interactions=budget,
                    check_interval=1_000,
                )
                recovered += bool(result.converged)
                if result.converged:
                    times.append(result.interactions)
                soft_resets.append(protocol.events["soft_reset"])
            rows.append(
                {
                    "variant": label,
                    "probation_max": params.probation_max,
                    "recovered": recovered / TRIALS,
                    "median_recovery": statistics.median(times) if times else float("inf"),
                    "median_soft_resets": statistics.median(soft_resets),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E13c_probation", rows, "E13c: probation-length ablation (duplicate ranks)")
    healthy, broken = rows
    assert healthy["recovered"] >= 0.9
    # With probation far below the detection time, genuine collisions are
    # repeatedly misattributed to bad initialization: heavy soft-reset
    # churn (vs. essentially none with the paper's constants).  Recovery
    # itself survives — the Z6 generation-gap rule (Protocol 2, line 13)
    # still forces a hard reset once churning generations drift ≥ 2 apart,
    # a robustness of the design worth recording (see EXPERIMENTS.md).
    assert healthy["median_soft_resets"] <= 1
    assert broken["median_soft_resets"] >= 5 * max(1, healthy["median_soft_resets"])

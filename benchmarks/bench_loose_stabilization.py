"""E14 — The loose-stabilization alternative (related-work landscape).

The paper's Section 2 situates ``ElectLeader_r`` against the
loosely-stabilizing relaxation: far fewer states, but the leader is only
guaranteed for a finite *holding time*.  This bench measures, for the
timeout-heartbeat protocol of Sudo et al. (shape), the two defining
quantities as the timer scale τ grows:

* convergence time from adversarial (including zero-leader) starts —
  should stay ``O(n log n)``-ish across τ;
* median holding time of the elected leader — should grow rapidly
  (super-linearly) with τ while the state count grows only linearly.

Shape to reproduce: the convergence column is flat while the holding
column explodes — the loose trade-off — alongside a state count that is
microscopic next to any self-stabilizing protocol (cf. E1).
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
from repro.core.params import BaselineParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation

N = 32
TRIALS = 10
HOLD_BUDGET = 2_000_000


def measure(tau: float, seed_base: int) -> dict[str, object]:
    protocol = LooselyStabilizingLeaderElection(BaselineParams(n=N), tau=tau)
    converge_times = []
    holding_times = []
    for trial in range(TRIALS):
        config = protocol.adversarial_configuration(make_rng(derive_seed(seed_base, trial)))
        sim = Simulation(protocol, config=config, seed=derive_seed(seed_base + 1, trial))
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=1_000_000, check_interval=20
        )
        assert result.converged
        converge_times.append(result.interactions)
        holding_times.append(
            protocol.holding_time(
                result.config, make_rng(derive_seed(seed_base + 2, trial)), HOLD_BUDGET
            )
        )
    return {
        "tau": tau,
        "timer_max": protocol.timer_max,
        "states": protocol.state_count(),
        "median_convergence": statistics.median(converge_times),
        "median_holding": statistics.median(holding_times),
        "holding_censored_at": HOLD_BUDGET,
    }


def test_e14_loose_stabilization(benchmark, record_table):
    def experiment():
        return [measure(tau, seed_base=14_000 + int(tau * 10)) for tau in (0.25, 1.0, 4.0, 16.0)]

    rows = run_once(benchmark, experiment)
    record_table(
        "E14_loose_stabilization",
        rows,
        f"E14: loosely-stabilizing timeout protocol (n={N})",
    )

    holdings = [float(row["median_holding"]) for row in rows]
    convergences = [float(row["median_convergence"]) for row in rows]
    states = [int(row["states"]) for row in rows]
    # Holding time grows much faster than the (linear) state count.
    assert holdings[-1] > 20 * holdings[0]
    assert states[-1] < 100 * states[0]
    # Convergence stays within one order of magnitude across τ.
    assert max(convergences) < 12 * max(1.0, min(convergences))
    # The whole state space stays microscopic (loose trade-off's selling point).
    assert all(s < 10_000 for s in states)

"""E3 — The space-time trade-off: time vs r at fixed n (Section 3.3).

Sweeps the trade-off parameter ``r`` at one population size, reporting
measured stabilization alongside the analytic state-space cost.

Shape to reproduce: time falls like ``1/r`` (the paper's
``O((n²/r) log n)``) while bits rise like ``r²·log n`` — the defining
trade-off of Theorem 1.1.
"""

from __future__ import annotations

from conftest import WORKERS, run_once

from repro.analysis.statespace import elect_leader_bits
from repro.analysis.theory import (
    elect_leader_interactions,
    fit_power_law,
    predicted_stabilization_interactions,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.sim.trials import run_trials

N = 96
RS = [1, 2, 3, 4, 6, 8, 16, 32, 48]
TRIALS = 8


def test_e3_tradeoff_vs_r(benchmark, record_table):
    def experiment():
        rows = []
        for r in RS:
            protocol = ElectLeader(ProtocolParams(n=N, r=r))
            summary = run_trials(
                protocol,
                protocol.is_safe_configuration,
                n=N,
                trials=TRIALS,
                max_interactions=30_000_000,
                seed=3000 + r,
                check_interval=1000,
                label=f"r={r}",
                workers=WORKERS,
            )
            rows.append(
                {
                    "n": N,
                    "r": r,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 1),
                    "paper_shape_(n^2/r)ln_n": round(elect_leader_interactions(N, r)),
                    "predicted_concrete": round(
                        predicted_stabilization_interactions(protocol.params)
                    ),
                    "state_bits": round(elect_leader_bits(N, r), 1),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E3_tradeoff_vs_r", rows, f"E3: space-time trade-off at n={N}")

    assert all(row["success"] >= 0.9 for row in rows)
    medians = {int(row["r"]): float(row["median_interactions"]) for row in rows}
    # Time falls ~1/r in the formula-dominated range (small r) ...
    small_r = [r for r in RS if r <= 8]
    fit = fit_power_law([float(r) for r in small_r], [medians[r] for r in small_r])
    assert -1.6 < fit.exponent < -0.5, fit
    # ... and flattens at the Θ(n log n) time-optimal floor for large r
    # (the paper's O((n²/r) log n) cannot dip below the optimum).
    assert medians[48] <= medians[8] * 1.5
    # Space rises with r throughout (up to a tiny timer-bit wobble at the
    # degenerate r=1→2 step, where both partitions clamp to group size 2
    # and r=1 carries marginally larger Θ((n/r) log n) timers).
    bits = [float(row["state_bits"]) for row in rows]
    for smaller, larger in zip(bits, bits[1:]):
        assert larger >= smaller * 0.98, bits
    assert bits[-1] > 100 * bits[0]
    # End-to-end: the extreme points differ as the theorem predicts.
    assert medians[1] > 4 * medians[48]

"""E12 — ``FastLeaderElect`` (Appendix D.2, Lemma D.10).

Measures interactions until every agent has decided and exactly one agent
holds the leader bit, from awakening-style clean starts.

Shapes to reproduce: ``O(n log n)`` interactions (``O(log n)`` parallel
time — near-flat normalized medians) and unique-leader success
approaching 1 as n grows (failure probability ``O(1/n)`` from identifier
collisions in ``[n³]``).
"""

from __future__ import annotations

import math
import statistics

from conftest import run_once

from repro.core.fast_leader_elect import FastLeaderElectProtocol
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed
from repro.sim.simulation import Simulation

NS = [32, 128, 512, 2048]
TRIALS = 15


def test_e12_fast_leader_elect(benchmark, record_table):
    def experiment():
        rows = []
        for n in NS:
            protocol = FastLeaderElectProtocol(ProtocolParams(n=n, r=max(1, n // 4)))
            times = []
            successes = 0
            for trial in range(TRIALS):
                sim = Simulation(protocol, n=n, seed=derive_seed(12_000 + n, trial))
                result = sim.run_until(
                    lambda config, p=protocol: p.all_done(config),
                    max_interactions=int(30 * n * math.log(n)),
                    check_interval=max(16, n // 8),
                )
                assert result.converged, "agents never finished deciding"
                if protocol.leader_count(result.config) == 1:
                    successes += 1
                times.append(result.interactions)
            n_log_n = n * math.log(n)
            rows.append(
                {
                    "n": n,
                    "trials": TRIALS,
                    "unique_leader_rate": round(successes / TRIALS, 3),
                    "median_interactions": statistics.median(times),
                    "median_parallel_time": round(statistics.median(times) / n, 1),
                    "median_over_n_ln_n": round(statistics.median(times) / n_log_n, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E12_fast_leader_elect", rows, "E12: FastLeaderElect (Lemma D.10)")

    for row in rows:
        assert float(row["unique_leader_rate"]) >= 0.9, row
    normalized = [float(row["median_over_n_ln_n"]) for row in rows]
    # O(n log n) law: normalized medians flat within a small band.
    assert max(normalized) / min(normalized) < 2.0
    # Parallel time grows only logarithmically: ~2x from n=32 to n=2048.
    parallel = [float(row["median_parallel_time"]) for row in rows]
    assert parallel[-1] / parallel[0] < math.log(2048) / math.log(32) * 2

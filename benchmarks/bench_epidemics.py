"""E8 — Epidemic completion time (Lemma A.2) and interaction concentration
(Lemma A.1).

Shape to reproduce: two-way epidemics from a single source complete within
``c_epi·n·ln n`` interactions with ``c_epi < 7`` w.h.p. — the constant the
whole recovery analysis leans on — and per-agent interaction counts
concentrate around ``2t/n`` (Lemma A.1's ``[t/(αn), αt/n]`` window).
"""

from __future__ import annotations

import math
import statistics

from conftest import run_once

from repro.scheduler.rng import derive_seed
from repro.scheduler.scheduler import RandomScheduler
from repro.scheduler.rng import make_rng
from repro.sim.simulation import Simulation
from repro.substrates.epidemics import EpidemicProtocol

NS = [64, 256, 1024, 4096]
TRIALS = 12


def test_e8_epidemic_completion(benchmark, record_table):
    def experiment():
        rows = []
        protocol = EpidemicProtocol()
        for n in NS:
            times = []
            for trial in range(TRIALS):
                config = EpidemicProtocol.seeded_configuration(n, sources=1)
                sim = Simulation(protocol, config=config, seed=derive_seed(8000 + n, trial))
                result = sim.run_until(
                    protocol.is_goal_configuration,
                    max_interactions=int(20 * n * math.log(n)),
                    check_interval=max(16, n // 8),
                )
                assert result.converged
                times.append(result.interactions)
            n_log_n = n * math.log(n)
            rows.append(
                {
                    "n": n,
                    "trials": TRIALS,
                    "median_interactions": statistics.median(times),
                    "max_interactions": max(times),
                    "median_over_n_ln_n": round(statistics.median(times) / n_log_n, 3),
                    "max_over_n_ln_n": round(max(times) / n_log_n, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E8_epidemics", rows, "E8: two-way epidemic completion (Lemma A.2)")

    # Lemma A.2's constant: c_epi < 7 — even the max should clear it.
    for row in rows:
        assert float(row["max_over_n_ln_n"]) < 7.0, row
    # The normalized medians should be flat (n log n is the right law).
    normalized = [float(row["median_over_n_ln_n"]) for row in rows]
    assert max(normalized) / min(normalized) < 1.8


def test_e8_interaction_concentration(benchmark, record_table):
    """Lemma A.1: over t = 4 n ln n interactions, every agent's interaction
    count lies in [t/(αn), αt/n] for α > 7 (we report the empirical α)."""

    def experiment():
        rows = []
        for n in (256, 1024):
            t = int(4 * n * math.log(n))
            counts = [0] * n
            scheduler = RandomScheduler(n, make_rng(derive_seed(8800, n)))
            for _ in range(t):
                i, j = scheduler.next_pair()
                counts[i] += 1
                counts[j] += 1
            mean = 2 * t / n
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "mean_count": round(mean, 1),
                    "min_count": min(counts),
                    "max_count": max(counts),
                    "alpha_low": round(mean / min(counts) / 2, 2),
                    "alpha_high": round(max(counts) / mean * 2, 2),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E8_concentration", rows, "E8b: per-agent interaction concentration (Lemma A.1)")
    for row in rows:
        t, n = int(row["t"]), int(row["n"])
        assert int(row["min_count"]) > t / (7 * n)
        assert int(row["max_count"]) < 7 * t / n

"""E11 — Synthetic-coin sampling quality (Appendix B, Lemma B.1).

Measures (a) convergence of the population's coin balance to 1/2 from the
maximally biased start and (b) the empirical distribution of sampled
values against the ``[1/(2N), 2/N]`` almost-uniform envelope.

Shape to reproduce: every value's frequency inside the envelope for every
``N`` in the sweep — the property that lets the paper replace true
randomness with scheduler randomness at a ``O(N log N)`` state blow-up.
"""

from __future__ import annotations

from collections import Counter

from conftest import run_once

from repro.scheduler.rng import make_rng
from repro.substrates.synthetic_coin import SyntheticCoinPopulation

N_AGENTS = 192


def measure(value_space: int, seed: int) -> dict[str, object]:
    population = SyntheticCoinPopulation(N_AGENTS, value_space, make_rng(seed))
    initial_balance = population.coin_balance()
    population.run(25_000)
    warmed_balance = population.coin_balance()
    samples = population.collect_samples(reads=40, spacing_interactions=N_AGENTS * 4)
    counts = Counter(samples)
    total = len(samples)
    frequencies = [counts.get(value, 0) / total for value in range(value_space)]
    return {
        "N": value_space,
        "agents": N_AGENTS,
        "samples": total,
        "balance_initial": initial_balance,
        "balance_warmed": round(warmed_balance, 3),
        "min_freq*N": round(min(frequencies) * value_space, 3),
        "max_freq*N": round(max(frequencies) * value_space, 3),
        "envelope": "[0.5, 2.0]",
    }


def test_e11_synthetic_coin(benchmark, record_table):
    def experiment():
        return [measure(value_space, seed=11_000 + value_space) for value_space in (4, 16, 64)]

    rows = run_once(benchmark, experiment)
    record_table("E11_synthetic_coin", rows, "E11: synthetic-coin sample distribution (Lemma B.1)")

    for row in rows:
        # Coin balance reached ~1/2 from the all-zero start.
        assert abs(float(row["balance_warmed"]) - 0.5) < 0.12
        # Almost-uniform envelope (freq·N ∈ [1/2, 2]), with sampling slack.
        assert float(row["min_freq*N"]) > 0.25, row
        assert float(row["max_freq*N"]) < 3.0, row

"""E10 — ``AssignRanks_r`` in isolation (Lemma D.1).

Measures interactions until every agent is ranked *and* the ranking is
correct (silence then follows by construction), from dormant starts.

Shapes to reproduce: growth ``Θ((n²/r)·log n)`` in n at fixed r, speedup
with r at fixed n, and success rate 1 (the w.h.p. claim).
"""

from __future__ import annotations

from conftest import WORKERS, run_once

from repro.analysis.theory import assign_ranks_interactions, fit_power_law
from repro.core.assign_ranks import AssignRanksProtocol
from repro.core.params import ProtocolParams
from repro.sim.trials import run_trials

TRIALS = 10


def measure(n: int, r: int, seed: int) -> dict[str, object]:
    protocol = AssignRanksProtocol(ProtocolParams(n=n, r=r))
    summary = run_trials(
        protocol,
        protocol.is_goal_configuration,
        n=n,
        trials=TRIALS,
        max_interactions=30_000_000,
        seed=seed,
        check_interval=500,
        label=f"n={n},r={r}",
        workers=WORKERS,
    )
    predicted = assign_ranks_interactions(n, r)
    return {
        "n": n,
        "r": r,
        "success": summary.success_rate,
        "median_interactions": summary.median_interactions,
        "median_parallel_time": round(summary.median_time, 1),
        "predicted_(n^2/r)ln_n": round(predicted),
        "ratio": round(summary.median_interactions / predicted, 3),
    }


def test_e10_ranking_vs_n(benchmark, record_table):
    def experiment():
        return [measure(n, 4, seed=10_000 + n) for n in (16, 32, 64, 96)]

    rows = run_once(benchmark, experiment)
    record_table("E10_ranking_vs_n", rows, "E10a: AssignRanks_r vs n (r=4)")
    assert all(row["success"] >= 0.9 for row in rows)
    fit = fit_power_law(
        [float(row["n"]) for row in rows],
        [float(row["median_interactions"]) for row in rows],
    )
    assert 1.2 < fit.exponent < 2.9, fit


def test_e10_ranking_vs_r(benchmark, record_table):
    def experiment():
        return [measure(48, r, seed=11_000 + r) for r in (1, 2, 4, 8, 16)]

    rows = run_once(benchmark, experiment)
    record_table("E10_ranking_vs_r", rows, "E10b: AssignRanks_r vs r (n=48)")
    assert all(row["success"] >= 0.9 for row in rows)
    medians = [float(row["median_interactions"]) for row in rows]
    # More deputies assign labels faster.
    assert medians[0] > medians[-1]

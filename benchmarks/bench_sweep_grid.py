"""E16/E17 — the scenario-grid sweep engine as a workload.

Two experiments exercise :mod:`repro.sim.sweep` end to end:

* **E16** runs a mixed grid — ``ElectLeader_r`` across ``(n, r)`` cells,
  clean and adversarial starts, with and without fault injection, next to
  a baseline — through the streaming engine, and *gates determinism*: the
  aggregate rows of the streamed multi-worker run must be byte-identical
  to a sequential (``workers=1``) run of the same grid, and the JSONL
  checkpoint must round-trip through resume unchanged.
* **E17** is the first workload to push the engine past ``n >= 1024``:
  a ``pairwise_elimination`` sweep whose largest population is 1024
  agents (full mode; smoke mode trims to 128), confirming the grid,
  the batched simulator fast path, and the streaming checkpoints compose
  at four-digit populations.
"""

from __future__ import annotations

from conftest import RESULTS_DIR, WORKERS, fast_scaled, run_once

from repro.sim.sweep import GridSpec, expand_grid, run_sweep
from repro.sim.trials import format_table

# Fault cells run the availability workload for the FULL interaction
# budget (no early exit on convergence), so the budget is sized to the
# sweep rather than left at the run-to-convergence default: comfortable
# headroom for every fault-free cell, minutes-scale for the fault cells.
E16_GRID = GridSpec(
    protocols=("elect_leader", "pairwise_elimination"),
    ns=fast_scaled((16, 24), (12, 16)),
    rs=(2, 4),
    adversaries=("clean", "random_soup"),
    fault_rates=(0.0, 0.02),
    trials=fast_scaled(5, 2),
    seed=1600,
    max_interactions=fast_scaled(2_000_000, 500_000),
    check_interval=2_000,
)

E17_GRID = GridSpec(
    protocols=("pairwise_elimination",),
    ns=fast_scaled((256, 512, 1024), (64, 128)),
    rs=(1,),
    adversaries=("clean",),
    fault_rates=(0.0,),
    trials=fast_scaled(5, 3),
    seed=1700,
    max_interactions=fast_scaled(80_000_000, 8_000_000),
    check_interval=4_096,
)


def test_e16_sweep_grid_streamed_equals_sequential(benchmark, record_table, tmp_path):
    def experiment():
        streamed = run_sweep(
            E16_GRID,
            workers=WORKERS,
            jsonl_path=RESULTS_DIR / "E16_sweep_grid.jsonl",
            force=True,
        )
        sequential = run_sweep(E16_GRID, workers=1, jsonl_path=tmp_path / "seq.jsonl")
        # The determinism gate: streamed multi-worker aggregation must be
        # byte-identical to sequential, and so must the JSONL streams.
        assert format_table(streamed.rows) == format_table(sequential.rows)
        assert (RESULTS_DIR / "E16_sweep_grid.jsonl").read_bytes() == (
            tmp_path / "seq.jsonl"
        ).read_bytes()
        # Resume of the finished checkpoint replays without re-running.
        resumed = run_sweep(
            E16_GRID,
            workers=WORKERS,
            jsonl_path=RESULTS_DIR / "E16_sweep_grid.jsonl",
            resume=True,
        )
        assert resumed.resumed_trials == len(resumed.specs)
        assert format_table(resumed.rows) == format_table(streamed.rows)
        return streamed.rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E16_sweep_grid",
        rows,
        f"E16: scenario-grid sweep ({len(expand_grid(E16_GRID))} trials, streamed)",
    )
    assert all(row["success_rate"] >= 0.9 for row in rows if row["fault_rate"] == "0")


def test_e17_sweep_large_n(benchmark, record_table):
    def experiment():
        result = run_sweep(
            E17_GRID,
            workers=WORKERS,
            jsonl_path=RESULTS_DIR / "E17_sweep_large_n.jsonl",
            force=True,
        )
        return result.rows

    rows = run_once(benchmark, experiment)
    largest = max(E17_GRID.ns)
    record_table(
        "E17_sweep_large_n",
        rows,
        f"E17: streaming sweep up to n={largest} (pairwise elimination)",
    )
    # Every population size — including the n >= 1024 cells in full mode —
    # must elect its leader within budget.
    assert all(row["success_rate"] == 1.0 for row in rows)

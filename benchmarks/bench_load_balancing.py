"""E9 — Token load balancing (Lemma E.6 substrate).

From the maximally clumped start (all ``4m`` tokens at one agent),
measures the interactions until *no agent is empty* — the event
``DetectCollision_r`` needs so that every group member holds a refreshed
message — and until the discrepancy drops to O(1).

Shape to reproduce: both milestones within ``O(m log m)`` interactions
(Theorem 1 of Berenbrink et al., as used in the Lemma E.6 coupling); the
normalized medians stay flat across m.
"""

from __future__ import annotations

import math
import statistics

from conftest import run_once

from repro.scheduler.rng import derive_seed, make_rng
from repro.substrates.load_balancing import LoadBalancingProcess

MS = [16, 32, 64, 128, 256]
TRIALS = 15


def test_e9_load_balancing(benchmark, record_table):
    def experiment():
        rows = []
        for m in MS:
            cover_times = []
            balance_times = []
            for trial in range(TRIALS):
                rng = make_rng(derive_seed(9000 + m, trial))
                process = LoadBalancingProcess.clumped(m, 4 * m)
                covered = process.run_until_covered(rng, max_interactions=200 * m)
                assert covered is not None
                cover_times.append(covered)
                process2 = LoadBalancingProcess.clumped(m, 4 * m)
                rng2 = make_rng(derive_seed(9500 + m, trial))
                balanced = process2.run_until_balanced(rng2, max_interactions=400 * m)
                assert balanced is not None
                balance_times.append(balanced)
            m_log_m = m * math.log(m)
            rows.append(
                {
                    "m": m,
                    "tokens": 4 * m,
                    "median_cover": statistics.median(cover_times),
                    "cover_over_m_ln_m": round(statistics.median(cover_times) / m_log_m, 3),
                    "median_balance": statistics.median(balance_times),
                    "balance_over_m_ln_m": round(statistics.median(balance_times) / m_log_m, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E9_load_balancing", rows, "E9: load balancing coverage & discrepancy (Lemma E.6)")

    cover_norm = [float(row["cover_over_m_ln_m"]) for row in rows]
    balance_norm = [float(row["balance_over_m_ln_m"]) for row in rows]
    assert max(cover_norm) / min(cover_norm) < 2.5
    assert max(balance_norm) / min(balance_norm) < 2.5

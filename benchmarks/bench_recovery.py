"""E4 — Self-stabilizing recovery from adversarial configurations (Lemma 6.3).

For every adversary class in the suite, measures the interactions from the
adversarial configuration back to the safe set.

Shape to reproduce: *every* class recovers (success 1.0 — the
self-stabilization property itself), and recovery stays within the
``O((n²/r)·log n)`` envelope of Lemma 6.3 + Lemma 6.2.  Message-level
corruptions on a correct ranking recover fastest (soft-reset path), while
rank-level corruptions pay for a full reset plus re-ranking.
"""

from __future__ import annotations

from conftest import WORKERS, run_once

from repro.adversary.initializers import ADVERSARIES
from repro.analysis.theory import elect_leader_interactions
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.initial_state import ObjectConfig
from repro.sim.trials import run_trials

N = 32
R = 4
TRIALS = 10


def test_e4_recovery_per_adversary(benchmark, record_table):
    protocol = ElectLeader(ProtocolParams(n=N, r=R))
    envelope = 40 * elect_leader_interactions(N, R)

    def experiment():
        rows = []
        for name in sorted(ADVERSARIES):
            adversary = ADVERSARIES[name]

            def factory(index: int, adversary=adversary):
                return ObjectConfig(adversary(protocol, make_rng(derive_seed(4000, index))))

            summary = run_trials(
                protocol,
                protocol.is_safe_configuration,
                n=N,
                trials=TRIALS,
                max_interactions=int(envelope),
                seed=4100,
                check_interval=1000,
                init=factory,
                label=name,
                workers=WORKERS,
            )
            rows.append(
                {
                    "adversary": name,
                    "n": N,
                    "r": R,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 1),
                    "p95_parallel_time": round(summary.p95_time, 1),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E4_recovery", rows, f"E4: recovery from adversarial starts (n={N}, r={R})")

    # Self-stabilization: every class recovers in (almost) every trial.
    for row in rows:
        assert row["success"] >= 0.9, row

"""E15 — Availability under continuous transient faults.

The operational content of self-stabilization (Section 1's motivation):
under continuous memory corruption, the system's *availability* — the
fraction of time a unique leader exists — is governed by the ratio of the
fault interval to the recovery time of Theorem 1.1.

Sweeps the fault rate (bursts per unit parallel time, each burst
scrambling two agents completely) and reports availability and median
repair time for ``ElectLeader_r``.

Shape to reproduce: availability ≈ 1 when the mean fault gap far exceeds
the ``O((n/r)·log n)`` parallel recovery time, degrading monotonically
(with noise) as the gap shrinks toward the recovery time.
"""

from __future__ import annotations

from conftest import run_once

from repro.adversary.initializers import (
    correct_verifier_configuration,
    single_agent_scrambler,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.faults import FaultInjector, measure_availability

N = 32
R = 4
RATES = [0.0005, 0.002, 0.01, 0.05, 0.25]
TRIALS = 5
TOTAL = 150_000


def measure_rate(rate: float, seed_base: int) -> dict[str, object]:
    protocol = ElectLeader(ProtocolParams(n=N, r=R))
    corrupt = single_agent_scrambler(protocol)
    availabilities = []
    repairs = []
    bursts = 0
    for trial in range(TRIALS):
        injector = FaultInjector(
            corrupt, rate=rate, burst_size=2, rng=make_rng(derive_seed(seed_base, trial))
        )
        report = measure_availability(
            protocol,
            lambda config: protocol.leader_count(config) == 1,
            injector,
            n=N,
            seed=derive_seed(seed_base + 1, trial),
            total_interactions=TOTAL,
            checkpoint_every=500,
            config=correct_verifier_configuration(protocol),
        )
        availabilities.append(report.availability)
        repairs.extend(report.repair_times)
        bursts += report.fault_bursts
    availabilities.sort()
    repairs.sort()
    return {
        "fault_rate_per_ptime": rate,
        "mean_gap_ptime": round(1.0 / rate, 1),
        "bursts_total": bursts,
        "median_availability": availabilities[len(availabilities) // 2],
        "median_repair_interactions": repairs[len(repairs) // 2] if repairs else "-",
    }


def test_e15_availability(benchmark, record_table):
    def experiment():
        return [measure_rate(rate, 15_000 + int(rate * 10_000)) for rate in RATES]

    rows = run_once(benchmark, experiment)
    record_table(
        "E15_availability",
        rows,
        f"E15: availability under transient faults (n={N}, r={R})",
    )

    availability = [float(row["median_availability"]) for row in rows]
    # Near-perfect at the quietest rate; clearly degraded at the noisiest.
    assert availability[0] > 0.9
    assert availability[-1] < availability[0]
    # Broadly monotone: each rate at most slightly above the previous.
    for slow, fast in zip(availability, availability[1:]):
        assert fast <= slow + 0.1

"""E24 — JIT kernel gate: ``batch-jit`` vs ``batch`` on the lockstep cell.

:mod:`repro.sim.kernels` compiles the batch engine's lockstep step with
numba — same ``(T, S)`` matrix, same law, counter-based per-row streams
instead of the shared PCG64 (law-exact vs ``batch``, not bit-exact).
This benchmark is its regression gate, run by CI's ``jit`` job (FAST) and
the ``bench-perf``/nightly jobs (full budget):

* **E24 (speedup gates)** — ``run_trials(backend="batch-jit")`` on the
  two-way epidemic cell (``T = 1000``, ``n = 10⁴``) and a small batch of
  ``n = 10⁶`` rows must both be **≥ 3×** faster than ``backend="batch"``
  (≥ 1.5× on the trimmed FAST cell; the big rows are recorded ungated in
  FAST).  Small ``S`` is exactly where the numpy engine's per-step Python
  dispatch dominates and the compiled per-row loop wins.  Skipped when
  numba is absent — compiled speed cannot be measured uncompiled.

* **E24b (law equivalence)** — seed-for-seed distribution agreement vs
  ``batch``: every trial converges on both engines, 95% bootstrap CIs of
  the median completion interactions overlap, and a two-sample KS test on
  the completion-interaction samples does not reject at α = 0.001.
  Without numba this still runs, on the ``REPRO_JIT_PURE_PYTHON=1``
  escape hatch (same kernel source, uncompiled) with a trimmed cell — the
  law gate never depends on having a compiler.

* **E24c (T = 1 exactness)** — a one-row batch inherits the batch
  engine's :class:`CountsSimulation` delegation, so the outcome is
  asserted bit-identical to ``backend="counts"``.

Both tests print the per-step wall-clock breakdown (draw / match /
apply / retire) from :meth:`BatchCountsEngine.instrument_steps`, so a
kernel regression is attributable to a phase, not just gated.  Results
merge into ``benchmarks/results/perf-summary.json`` beside E22.
"""

from __future__ import annotations

import math
import statistics

import pytest
from conftest import FAST, run_once, update_perf_summary

from repro.obs import perf_counter, step_breakdown_rows
from repro.scheduler.rng import RNG, make_rng
from repro.sim.backends import make_simulation
from repro.sim.counts_backend import goal_counts_predicate
from repro.sim.initial_state import CountVector, Replicated
from repro.sim.kernels import PURE_PYTHON_ENV, jit_available
from repro.sim.trials import run_trials
from repro.substrates.epidemics import EpidemicProtocol

#: The acceptance bar (≥ 3×) applies at the full T = 1000, n = 10⁴ cell;
#: FAST smoke runs a trimmed cell with a lenient floor.
TRIALS = 64 if FAST else 1000
N = 2_000 if FAST else 10_000
SPEEDUP_FLOOR = 1.5 if FAST else 3.0
CHECK_INTERVAL = N // 4
BUDGET = 30 * N
#: The headline-scale rows (the paper's n = 10⁶ regime).
BIG_N = 100_000 if FAST else 1_000_000
BIG_ROWS = 4
#: Uncompiled escape-hatch law cell (Python-speed kernels; keep it small).
PURE_TRIALS = 64
PURE_N = 2_000
BOOTSTRAP = 400
KS_ALPHA = 1e-3


def _seeded_start(n: int) -> CountVector:
    return CountVector([n - 1, 1])  # one infected source


def _bootstrap_ci(values: list[float], rng: RNG) -> tuple[float, float]:
    medians = sorted(
        statistics.median(rng.choices(values, k=len(values)))
        for _ in range(BOOTSTRAP)
    )
    return medians[int(0.025 * BOOTSTRAP)], medians[int(0.975 * BOOTSTRAP) - 1]


def _ks_statistic(xs: list[float], ys: list[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (max empirical-CDF gap)."""
    xs = sorted(xs)
    ys = sorted(ys)
    points = sorted(set(xs) | set(ys))
    gap = 0.0
    i = j = 0
    for value in points:
        while i < len(xs) and xs[i] <= value:
            i += 1
        while j < len(ys) and ys[j] <= value:
            j += 1
        gap = max(gap, abs(i / len(xs) - j / len(ys)))
    return gap


def _ks_threshold(n_x: int, n_y: int) -> float:
    """Rejection threshold at ``KS_ALPHA`` (asymptotic two-sample form)."""
    c = math.sqrt(-math.log(KS_ALPHA / 2.0) / 2.0)
    return c * math.sqrt((n_x + n_y) / (n_x * n_y))


def _run_cell(backend: str, *, trials: int, n: int, seed: int = 7):
    """One epidemic grid cell through ``run_trials`` on ``backend``."""
    protocol = EpidemicProtocol()
    predicate = goal_counts_predicate(protocol)
    start = perf_counter()
    summary = run_trials(
        protocol,
        predicate,
        n=n,
        trials=trials,
        max_interactions=30 * n,
        seed=seed,
        check_interval=max(1, n // 4),
        init=_seeded_start(n),
        workers=1,
        backend=backend,
        label=f"epidemic/{backend}",
    )
    return summary, perf_counter() - start


def _step_breakdown(backend: str, *, trials: int, n: int) -> dict[str, float]:
    """Drive one instrumented engine; return the per-phase seconds."""
    protocol = EpidemicProtocol()
    predicate = goal_counts_predicate(protocol)
    engine = make_simulation(
        protocol,
        init=Replicated(_seeded_start(n), trials),
        seed=7,
        backend=backend,
    )
    timings = engine.instrument_steps()
    engine.run_rows_until(
        predicate, max_interactions=30 * n, check_interval=max(1, n // 4)
    )
    return timings


def _breakdown_rows(label: str, timings: dict[str, float]) -> list[dict]:
    return [
        {"workload": label, **row} for row in step_breakdown_rows(timings)
    ]


def test_e24_jit_law_equivalence(benchmark, record_table, monkeypatch):
    """E24b/E24c: law (not bit) agreement vs ``batch``; T = 1 exactness.

    Runs in every environment: compiled when numba is installed, else on
    the explicit uncompiled escape hatch with a trimmed cell.
    """
    compiled = jit_available()
    if not compiled:
        monkeypatch.setenv(PURE_PYTHON_ENV, "1")
    trials = TRIALS if compiled else min(TRIALS, PURE_TRIALS)
    n = N if compiled else min(N, PURE_N)

    def experiment():
        results = {}
        for backend in ("batch", "batch-jit"):
            summary, elapsed = _run_cell(backend, trials=trials, n=n)
            results[backend] = (summary, elapsed)
        return results

    results = run_once(benchmark, experiment)
    batch_summary, batch_s = results["batch"]
    jit_summary, jit_s = results["batch-jit"]

    rng = make_rng(24)
    batch_lo, batch_hi = _bootstrap_ci(batch_summary.interactions, rng)
    jit_lo, jit_hi = _bootstrap_ci(jit_summary.interactions, rng)
    ci_overlap = batch_lo <= jit_hi and jit_lo <= batch_hi
    ks = _ks_statistic(batch_summary.interactions, jit_summary.interactions)
    ks_limit = _ks_threshold(trials, trials)

    # E24c: a one-row batch delegates to the counts engine bit-for-bit.
    protocol = EpidemicProtocol()
    predicate = goal_counts_predicate(protocol)
    single = {
        backend: run_trials(
            protocol,
            predicate,
            n=n,
            trials=1,
            max_interactions=30 * n,
            seed=7,
            check_interval=max(1, n // 4),
            init=_seeded_start(n),
            workers=1,
            backend=backend,
        )
        for backend in ("counts", "batch-jit")
    }
    single_exact = (
        single["batch-jit"].interactions == single["counts"].interactions
        and single["batch-jit"].converged == single["counts"].converged
    )

    timings = _step_breakdown("batch-jit", trials=trials, n=n)
    rows = [
        {
            "workload": f"epidemic-cell/{backend}",
            "n": n,
            "trials": trials,
            "compiled": compiled,
            "success_rate": round(results[backend][0].success_rate, 3),
            "median_interactions": results[backend][0].median_interactions,
            "seconds": round(results[backend][1], 3),
        }
        for backend in ("batch", "batch-jit")
    ] + _breakdown_rows("batch-jit step breakdown", timings)
    record_table(
        "E24_batch_jit_law",
        rows,
        f"E24b: batch-jit vs batch law agreement (n={n}, {trials}-trial cell, "
        f"{'compiled' if compiled else 'uncompiled escape hatch'})",
    )

    update_perf_summary(
        "E24_batch_jit_law",
        {
            "experiment": "E24_batch_jit_law",
            "n": n,
            "trials": trials,
            "fast_mode": FAST,
            "compiled": compiled,
            "batch_seconds": round(batch_s, 3),
            "batch_jit_seconds": round(jit_s, 3),
            "median_interactions_ci": {
                "batch": [batch_lo, batch_hi],
                "batch-jit": [jit_lo, jit_hi],
            },
            "ci_overlap": ci_overlap,
            "ks_statistic": round(ks, 4),
            "ks_threshold": round(ks_limit, 4),
            "single_trial_exact": single_exact,
            "step_breakdown_seconds": {k: round(v, 4) for k, v in timings.items()},
        },
    )

    assert batch_summary.converged == trials
    assert jit_summary.converged == trials
    assert single_exact, single
    assert ci_overlap, (batch_lo, batch_hi, jit_lo, jit_hi)
    assert ks <= ks_limit, (ks, ks_limit)


def test_e24_jit_speedup(benchmark, record_table):
    """E24: the compiled ≥ 3× gates (cell + headline-scale rows)."""
    if not jit_available():
        pytest.skip(
            "numba not installed (the [jit] extra): compiled speed cannot "
            "be measured on the uncompiled escape hatch"
        )

    # Warm the JIT cache outside the timed region — compilation is a
    # once-per-process cost, not a per-cell cost.
    _run_cell("batch-jit", trials=2, n=500)

    def experiment():
        cell = {
            backend: _run_cell(backend, trials=TRIALS, n=N)
            for backend in ("batch", "batch-jit")
        }
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        big = {}
        for backend in ("batch", "batch-jit"):
            engine = make_simulation(
                protocol,
                init=Replicated(_seeded_start(BIG_N), BIG_ROWS),
                seed=11,
                backend=backend,
            )
            start = perf_counter()
            outcomes = engine.run_rows_until(
                predicate,
                max_interactions=30 * BIG_N,
                check_interval=BIG_N,
            )
            big[backend] = (outcomes, perf_counter() - start)
        return cell, big

    (cell, big) = run_once(benchmark, experiment)
    cell_speedup = cell["batch"][1] / cell["batch-jit"][1]
    big_speedup = big["batch"][1] / big["batch-jit"][1]
    timings = _step_breakdown("batch-jit", trials=TRIALS, n=N)

    rows = [
        {
            "workload": f"epidemic-cell/{backend}",
            "n": N,
            "trials": TRIALS,
            "seconds": round(cell[backend][1], 3),
        }
        for backend in ("batch", "batch-jit")
    ] + [
        {
            "workload": f"big-rows/{backend}",
            "n": BIG_N,
            "trials": BIG_ROWS,
            "seconds": round(big[backend][1], 3),
        }
        for backend in ("batch", "batch-jit")
    ] + _breakdown_rows("batch-jit step breakdown", timings)
    rows[1]["speedup_vs_batch"] = round(cell_speedup, 2)
    rows[3]["speedup_vs_batch"] = round(big_speedup, 2)
    record_table(
        "E24_batch_jit",
        rows,
        f"E24: batch-jit vs batch (cell n={N} × {TRIALS} trials; "
        f"{BIG_ROWS} rows at n={BIG_N})",
    )

    update_perf_summary(
        "E24_batch_jit",
        {
            "experiment": "E24_batch_jit",
            "n": N,
            "trials": TRIALS,
            "big_n": BIG_N,
            "big_rows": BIG_ROWS,
            "fast_mode": FAST,
            "speedup_floor": SPEEDUP_FLOOR,
            "cell_speedup": round(cell_speedup, 2),
            "big_row_speedup": round(big_speedup, 2),
            "step_breakdown_seconds": {k: round(v, 4) for k, v in timings.items()},
        },
    )

    for backend in ("batch", "batch-jit"):
        assert all(outcome.converged for outcome in big[backend][0])
    assert cell_speedup >= SPEEDUP_FLOOR, rows
    if not FAST:  # the headline-scale gate needs the full n = 10⁶ rows
        assert big_speedup >= SPEEDUP_FLOOR, rows

"""Microbenchmarks — simulator throughput per protocol.

Unlike the E-series experiments (which measure *interaction counts*, a
machine-independent quantity), these measure wall-clock throughput of the
transition functions, using pytest-benchmark's repeated timing as
intended.  They exist to keep the simulator's performance from silently
regressing — the experiment suite's feasible (n, trials) envelope depends
on it — and to document the relative cost of the protocol layers:
``ElectLeader_r``'s verifier interactions move Θ(r²) messages, so
throughput drops as r grows, while the baselines are O(1) per
interaction.
"""

from __future__ import annotations

from conftest import fast_scaled

from repro.adversary.initializers import correct_verifier_configuration
from repro.baselines.cai_izumi_wada import CaiIzumiWada
from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.scheduler.rng import make_rng
from repro.scheduler.scheduler import RandomScheduler
from repro.substrates.epidemics import EpidemicProtocol

INTERACTIONS = fast_scaled(2_000, 500)


def _runner(protocol, config):
    """A closure running a fixed burst of interactions on private state."""
    rng = make_rng(1)
    scheduler = RandomScheduler(len(config), make_rng(2))
    pristine = [state.clone() for state in config]

    def run():
        working = [state.clone() for state in pristine]
        for _ in range(INTERACTIONS):
            i, j = scheduler.next_pair()
            protocol.transition(working[i], working[j], rng)

    return run


def test_throughput_elect_leader_verifiers_r2(benchmark):
    protocol = ElectLeader(ProtocolParams(n=32, r=2))
    benchmark(_runner(protocol, correct_verifier_configuration(protocol)))


def test_throughput_elect_leader_verifiers_r8(benchmark):
    protocol = ElectLeader(ProtocolParams(n=32, r=8))
    benchmark(_runner(protocol, correct_verifier_configuration(protocol)))


def test_throughput_elect_leader_ranking_phase(benchmark):
    protocol = ElectLeader(ProtocolParams(n=32, r=4))
    benchmark(_runner(protocol, [protocol.initial_state() for _ in range(32)]))


def test_throughput_cai_izumi_wada(benchmark):
    protocol = CaiIzumiWada(BaselineParams(n=32))
    benchmark(_runner(protocol, [protocol.initial_state() for _ in range(32)]))


def test_throughput_epidemic(benchmark):
    protocol = EpidemicProtocol()
    benchmark(_runner(protocol, EpidemicProtocol.seeded_configuration(32, 1)))

"""E22 — Batch-backend speedup gate on a 1000-trial grid cell.

The batch backend exists so that a whole sweep cell — every trial of one
``(protocol, n, adversary, fault)`` configuration — executes as a single
``(T, S)`` counts matrix advanced in lockstep, amortizing the Python-level
interpreter work of the counts engine across all rows.  This benchmark is
its regression gate, run by CI's ``bench-perf`` job:

* **E22 (cell gate)** — ``run_trials(backend="batch")`` on the two-way
  epidemic at ``T = 1000`` trials must be **≥ 10×** faster than the same
  call on the per-trial counts backend (``workers=1`` — the honest
  same-substrate comparison; process fan-out buys wall-clock on both
  sides equally).  Both runs execute the identical interaction law; the
  per-trial engine pays the per-collision-run Python dispatch once per
  trial per run, the batch engine pays it once per lockstep step for all
  1000 rows.

* **E22b (distribution agreement)** — at ``T = 1``, the batch engine *is*
  the counts engine (it wraps one :class:`CountsSimulation` with the same
  seed), so the trial outcome is asserted bit-identical.  At full ``T``
  the engines draw from different stream shapes, so agreement is
  statistical: 95% bootstrap confidence intervals of the median
  completion interactions must overlap, and both sides must converge on
  every trial.

* **E22c (fault-schedule identity)** — per-row burst schedules are a pure
  function of the :class:`FaultSpec` seed, so a batched fault row must
  fire bursts at exactly the per-trial :class:`FaultEngine` positions.

Results land in ``benchmarks/results/perf-summary.json`` beside E18/E20.
``ElectLeader_r`` is asserted to fail loudly on the batch backend,
mirroring the other vectorized engines' assertions.
"""

from __future__ import annotations

import statistics

from conftest import FAST, run_once, update_perf_summary

from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.obs import perf_counter, step_breakdown_rows
from repro.scheduler.rng import RNG, make_rng
from repro.sim.backends import make_simulation
from repro.sim.batch_backend import BatchCountsEngine
from repro.sim.counts_backend import CountsBackendError, goal_counts_predicate
from repro.sim.fault_engine import FaultSpec
from repro.sim.initial_state import CountVector, Replicated
from repro.sim.trials import run_trials
from repro.substrates.epidemics import EpidemicProtocol

#: The acceptance bar (≥ 10×) applies at the full T = 1000 grid cell;
#: FAST smoke runs a trimmed cell with a lenient floor so loaded shared
#: runners don't flake.
TRIALS = 64 if FAST else 1000
N = 2_000 if FAST else 10_000
SPEEDUP_FLOOR = 3.0 if FAST else 10.0
#: Convergence-check cadence: ¼ parallel-time resolution, as in E20.
CHECK_INTERVAL = N // 4
#: Two-way epidemic completion concentrates near n·ln n; 30n is generous.
BUDGET = 30 * N
#: Bootstrap resamples for the E22b median-interactions CI.
BOOTSTRAP = 400


def _seeded_start(n: int) -> CountVector:
    return CountVector([n - 1, 1])  # one infected source


def _bootstrap_ci(values: list[float], rng: RNG) -> tuple[float, float]:
    medians = sorted(
        statistics.median(rng.choices(values, k=len(values)))
        for _ in range(BOOTSTRAP)
    )
    return medians[int(0.025 * BOOTSTRAP)], medians[int(0.975 * BOOTSTRAP) - 1]


def test_e22_batch_backend_speedup(benchmark, record_table):
    def experiment():
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)

        rows = []
        summaries = {}
        for name in ("counts", "batch"):
            t0 = perf_counter()
            summary = run_trials(
                protocol,
                predicate,
                n=N,
                trials=TRIALS,
                max_interactions=BUDGET,
                seed=7,
                check_interval=CHECK_INTERVAL,
                init=_seeded_start(N),
                workers=1,
                backend=name,
                label=f"epidemic/{name}",
            )
            elapsed = perf_counter() - t0
            summaries[name] = (summary, elapsed)
            rows.append(
                {
                    "workload": f"epidemic-cell/{name}",
                    "n": N,
                    "trials": TRIALS,
                    "success_rate": round(summary.success_rate, 3),
                    "median_interactions": summary.median_interactions,
                    "seconds": round(elapsed, 3),
                }
            )
        return rows, summaries

    rows, summaries = run_once(benchmark, experiment)
    counts_summary, counts_s = summaries["counts"]
    batch_summary, batch_s = summaries["batch"]
    speedup = counts_s / batch_s if batch_s > 0 else float("inf")
    for row in rows:
        row["speedup_vs_counts"] = ""
    rows[1]["speedup_vs_counts"] = round(speedup, 2)
    record_table(
        "E22_batch_backend",
        rows,
        f"E22: batch vs per-trial counts backend (n={N}, one {TRIALS}-trial "
        f"grid cell checked every n/4)",
    )

    # E22b (distribution agreement): everything converges, and the median
    # completion interactions agree up to bootstrap-CI overlap.
    assert counts_summary.converged == TRIALS, rows
    assert batch_summary.converged == TRIALS, rows
    rng = make_rng(22)
    counts_lo, counts_hi = _bootstrap_ci(counts_summary.interactions, rng)
    batch_lo, batch_hi = _bootstrap_ci(batch_summary.interactions, rng)
    ci_overlap = counts_lo <= batch_hi and batch_lo <= counts_hi

    # E22b (T = 1 exactness): one-row batches wrap a CountsSimulation with
    # the same derived seed, so the outcome is bit-identical by law.
    protocol = EpidemicProtocol()
    predicate = goal_counts_predicate(protocol)
    single = {
        name: run_trials(
            protocol,
            predicate,
            n=N,
            trials=1,
            max_interactions=BUDGET,
            seed=7,
            check_interval=CHECK_INTERVAL,
            init=_seeded_start(N),
            workers=1,
            backend=name,
        )
        for name in ("counts", "batch")
    }
    single_exact = (
        single["batch"].interactions == single["counts"].interactions
        and single["batch"].converged == single["counts"].converged
    )

    # E22c (fault-schedule identity): batched rows fire bursts at exactly
    # the per-trial FaultEngine positions for the same FaultSpec.
    spec = FaultSpec(model="scramble_burst", rate=2.0, burst_size=3, seed=22)
    engine = BatchCountsEngine(
        protocol, init=Replicated(_seeded_start(N), 2), seed=9
    )
    engine.measure_rows_availability(
        predicate,
        total_interactions=4 * N,
        checkpoint_every=N,
        faults=[spec, spec],
    )
    twin = spec.make_engine(protocol, n=N)
    twin_sim = make_simulation(protocol, init=_seeded_start(N), backend="counts", seed=9)
    twin.measure_availability(
        twin_sim,
        predicate,
        total_interactions=4 * N,
        checkpoint_every=N,
    )
    schedule_exact = all(
        [event.interaction for event in engine.fault_events(row)]
        == [event.interaction for event in twin.events]
        for row in (0, 1)
    )

    # Per-step wall-clock breakdown (draw / match / apply / retire): an
    # instrumented engine re-runs the cell so kernel regressions are
    # attributable to a phase, not just visible as a ratio change.
    breakdown_engine = make_simulation(
        protocol,
        init=Replicated(_seeded_start(N), TRIALS),
        seed=7,
        backend="batch",
    )
    step_timings = breakdown_engine.instrument_steps()
    breakdown_engine.run_rows_until(
        predicate, max_interactions=BUDGET, check_interval=CHECK_INTERVAL
    )
    record_table(
        "E22_step_breakdown",
        step_breakdown_rows(step_timings),
        f"E22: batch per-step breakdown (n={N}, {TRIALS}-trial cell)",
    )

    update_perf_summary(
        "E22_batch_backend",
        {
            "experiment": "E22_batch_backend",
            "n": N,
            "trials": TRIALS,
            "fast_mode": FAST,
            "speedup_floor": SPEEDUP_FLOOR,
            "cell_speedup": round(speedup, 2),
            "counts_seconds": round(counts_s, 3),
            "batch_seconds": round(batch_s, 3),
            "median_interactions_ci": {
                "counts": [counts_lo, counts_hi],
                "batch": [batch_lo, batch_hi],
            },
            "ci_overlap": ci_overlap,
            "single_trial_exact": single_exact,
            "fault_schedule_exact": schedule_exact,
            "step_breakdown_seconds": {
                phase: round(seconds, 4) for phase, seconds in step_timings.items()
            },
            "rows": rows,
        },
    )

    # ElectLeader_r has no finite encoding: the batch backend must refuse
    # it loudly, never silently fall back to something slower or wrong.
    elect = ElectLeader(ProtocolParams(n=64, r=4))
    try:
        make_simulation(elect, n=64, backend="batch")
    except (CountsBackendError, ValueError):
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("ElectLeader must be rejected by the batch backend")

    assert single_exact, single
    assert schedule_exact
    assert ci_overlap, (counts_lo, counts_hi, batch_lo, batch_hi)

    # E22: the ≥10× cell gate (≥3× in FAST smoke).
    assert speedup >= SPEEDUP_FLOOR, rows

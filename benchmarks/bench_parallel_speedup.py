"""E0 — The parallel trial engine vs the sequential baseline.

Every E-series experiment reduces to independent seeded trials, so the
engine's two contract points are what this benchmark gates:

* **determinism** — ``run_trials`` must return bit-identical aggregates
  for every worker count (each trial is fully determined by its derived
  seed; outcomes are merged in trial order);
* **throughput** — the fan-out must actually buy wall-clock.  The
  acceptance configuration (``REPRO_BENCH_FULL=1``: a 200-trial
  ``ElectLeader_r`` sweep at n=256) asserts a ≥3× speedup with 4 workers
  on a ≥4-CPU machine.  The default and ``REPRO_BENCH_FAST`` smoke
  configurations use scaled-down sweeps and a lenient speedup floor so
  loaded or small CI runners don't flake — there the determinism check is
  the regression gate.
"""

from __future__ import annotations

import os

from conftest import FAST, run_once

from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.obs import perf_counter
from repro.sim.trials import TrialSummary, run_trials

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
N = 256 if FULL else (24 if FAST else 64)
TRIALS = 200 if FULL else (6 if FAST else 24)
R = 4
WORKERS = 4


def _sweep(workers: int) -> tuple[TrialSummary, float]:
    protocol = ElectLeader(ProtocolParams(n=N, r=R))
    start = perf_counter()
    summary = run_trials(
        protocol,
        protocol.is_safe_configuration,
        n=N,
        trials=TRIALS,
        max_interactions=60_000_000,
        seed=2025,
        check_interval=max(500, N * N // 8),
        label=f"workers={workers}",
        workers=workers,
    )
    return summary, perf_counter() - start


def test_e0_parallel_engine(benchmark, record_table):
    def experiment():
        sequential, wall_seq = _sweep(1)
        parallel, wall_par = _sweep(WORKERS)

        # Bit-identical aggregates across worker counts.
        assert parallel.converged == sequential.converged
        assert parallel.interactions == sequential.interactions
        assert parallel.parallel_times == sequential.parallel_times

        speedup = wall_seq / wall_par if wall_par > 0 else float("inf")
        return [
            {
                "engine": "sequential",
                "n": N,
                "trials": TRIALS,
                "success": sequential.success_rate,
                "median_interactions": sequential.median_interactions,
                "wall_s": round(wall_seq, 2),
                "speedup": 1.0,
            },
            {
                "engine": f"parallel(workers={WORKERS})",
                "n": N,
                "trials": TRIALS,
                "success": parallel.success_rate,
                "median_interactions": parallel.median_interactions,
                "wall_s": round(wall_par, 2),
                "speedup": round(speedup, 2),
            },
        ]

    rows = run_once(benchmark, experiment)
    record_table(
        "E0_parallel_engine",
        rows,
        f"E0: trial-engine wall-clock, sequential vs {WORKERS} workers "
        f"(n={N}, trials={TRIALS})",
    )

    assert all(row["success"] >= 0.9 for row in rows)
    cpus = os.cpu_count() or 1
    speedup = float(rows[-1]["speedup"])
    # The acceptance bar applies only to the full configuration on real
    # hardware; FAST/default runs record the speedup without asserting —
    # timing gates on loaded shared CI runners flake, and the determinism
    # checks above are the regression gate.
    if FULL and cpus >= 4:
        assert speedup >= 3.0, rows

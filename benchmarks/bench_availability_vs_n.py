"""E21 — Backend-generic availability under faults at the n = 10⁶ frontier.

E15 measures the paper's availability story — the fraction of time the
output predicate holds under continuous state corruption — but only on the
object backend at toy ``n``.  The fault engine
(:mod:`repro.sim.fault_engine`) makes the same workload backend-generic;
this benchmark is its regression gate, run by CI's ``bench-perf`` job:

* **E21 (workload gate)** — the *availability workload* (run the full
  budget under ``crash_reset`` bursts, checking the output predicate every
  ``n/4`` interactions) on the two-way epidemic at ``n = 10⁶`` must be
  **≥ 10×** faster on the counts backend than on the object backend.  The
  object engine pays Python dispatch per interaction plus an ``O(n)``
  predicate walk per checkpoint; the counts engine applies collision-free
  runs as ``O(S)`` deltas, bursts as ``O(S)`` hypergeometric mass moves,
  and checkpoints in ``O(S)``.

* **E21b (schedule + law agreement)** — for one seed, the burst schedule
  (interaction indices and burst count) must be **bit-identical** across
  the object, array and counts backends — the fault engine draws it from
  a dedicated PCG64 stream whose consumption never depends on the engine
  — and the measured availabilities must agree within a loose band
  (corruption is law-matched, not bit-matched).

* **E21c (recovery curve)** — on the counts backend at ``n = 10⁶``,
  availability must degrade monotonically (with slack) as the fault rate
  sweeps past the epidemic's ``Θ(log n)``-parallel-time repair scale, with
  median repair times reported per rate.

Nightly (``REPRO_BENCH_NIGHTLY=1``) adds the availability-vs-n curve
family across three decades to ``n = 10⁶`` for two fault models.
Results merge into ``benchmarks/results/perf-summary.json``.
"""

from __future__ import annotations

import os

from conftest import FAST, run_once, update_perf_summary

from repro.obs import perf_counter
from repro.sim.backends import make_simulation
from repro.sim.counts_backend import goal_counts_predicate
from repro.sim.fault_engine import make_fault_engine
from repro.sim.initial_state import CodeArray
from repro.substrates.epidemics import EpidemicProtocol

#: The acceptance bar (≥ 10×) applies at the full n = 10⁶ configuration;
#: FAST smoke runs at n = 10⁵, where the counts engine's edge is a small
#: multiple (√n-length runs amortize less), with a floor that only guards
#: against outright regressions.
N = 100_000 if FAST else 1_000_000
SPEEDUP_FLOOR = 2.0 if FAST else 10.0
#: Availability workload: 20 parallel time of continuous injection at
#: rate 0.5 bursts / parallel time, each crash-resetting 4 agents.
TOTAL = 20 * N
RATE = 0.5
BURST = 4
CHECKPOINT = N // 4
#: E21c sweeps the fault rate across the repair-time scale.
CURVE_RATES = (0.1, 0.5, 2.0)

NIGHTLY = os.environ.get("REPRO_BENCH_NIGHTLY", "") == "1"


def _infected_codes(n: int):
    import numpy

    return numpy.ones(n, dtype=numpy.int64)


def _measure(protocol, predicate, backend: str, n: int, *, rate=RATE, seed=21,
             total=None, model="crash_reset"):
    """One availability run; returns (report, seconds, burst schedule)."""
    sim = make_simulation(protocol, init=CodeArray(_infected_codes(n)),
                          seed=seed, backend=backend)
    engine = make_fault_engine(model, protocol, n=n, rate=rate, burst_size=BURST,
                               seed=seed + 1)
    start = perf_counter()
    report = engine.measure_availability(
        sim, predicate,
        total_interactions=total if total is not None else 20 * n,
        checkpoint_every=max(1, n // 4),
    )
    elapsed = perf_counter() - start
    return report, elapsed, [event.interaction for event in engine.events]


def test_e21_availability_vs_n(benchmark, record_table):
    def experiment():
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        rows = []
        runs = {}
        for backend in ("counts", "array", "object"):
            report, elapsed, schedule = _measure(
                protocol, predicate, backend, N, total=TOTAL
            )
            runs[backend] = (report, elapsed, schedule)
            rows.append(
                {
                    "workload": f"availability/{backend}",
                    "n": N,
                    "fault_model": "crash_reset",
                    "rate": RATE,
                    "bursts": report.fault_bursts,
                    "availability": round(report.availability, 3),
                    "median_repair": report.median_repair_interactions,
                    "seconds": round(elapsed, 3),
                }
            )
        curve = []
        for rate in CURVE_RATES:
            report, elapsed, _ = _measure(
                protocol, predicate, "counts", N, rate=rate, seed=33, total=TOTAL
            )
            curve.append(
                {
                    "workload": "recovery-curve/counts",
                    "n": N,
                    "fault_model": "crash_reset",
                    "rate": rate,
                    "bursts": report.fault_bursts,
                    "availability": round(report.availability, 3),
                    "median_repair": report.median_repair_interactions,
                    "seconds": round(elapsed, 3),
                }
            )
        return rows, curve, runs

    rows, curve, runs = run_once(benchmark, experiment)
    counts_report, counts_s, counts_schedule = runs["counts"]
    array_report, array_s, array_schedule = runs["array"]
    object_report, object_s, object_schedule = runs["object"]
    speedup = object_s / counts_s if counts_s > 0 else float("inf")
    for row in rows + curve:
        row["speedup_vs_object"] = ""
    rows[0]["speedup_vs_object"] = round(speedup, 2)
    record_table(
        "E21_availability_vs_n",
        rows + curve,
        f"E21: backend-generic availability under faults (n={N}, "
        f"crash_reset bursts of {BURST}, checkpoints every n/4)",
    )
    update_perf_summary(
        "E21_availability_vs_n",
        {
            "experiment": "E21_availability_vs_n",
            "n": N,
            "fast_mode": FAST,
            "speedup_floor": SPEEDUP_FLOOR,
            "workload_speedup": round(speedup, 2),
            "counts_seconds": round(counts_s, 3),
            "array_seconds": round(array_s, 3),
            "object_seconds": round(object_s, 3),
            "fault_bursts": counts_report.fault_bursts,
            "rows": rows + curve,
        },
    )

    # E21b: one seed, one burst schedule — bit-identical on every engine.
    assert counts_schedule == array_schedule == object_schedule
    assert counts_report.fault_bursts == object_report.fault_bursts > 0
    # Law-matched corruption: availabilities agree within a loose band.
    values = [r.availability for r in (counts_report, array_report, object_report)]
    assert max(values) - min(values) < 0.35, rows

    # E21c: availability degrades (with slack) as the rate crosses the
    # epidemic's repair scale; the quiet end keeps the system mostly up.
    availability = [row["availability"] for row in curve]
    assert availability[0] > 0.55, curve
    for slow, fast in zip(availability, availability[1:]):
        assert fast <= slow + 0.1, curve

    # E21: the ≥10× workload gate (≥3× in FAST smoke).
    assert speedup >= SPEEDUP_FLOOR, rows


def test_e21n_availability_curves_nightly(benchmark, record_table):
    """Availability-vs-n curve family up to n = 10⁶ (nightly only)."""
    import pytest

    if not NIGHTLY:
        pytest.skip("nightly full-bench only (REPRO_BENCH_NIGHTLY=1)")

    def experiment():
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        rows = []
        for model in ("crash_reset", "scramble_burst"):
            for n in (10_000, 100_000, 1_000_000):
                report, elapsed, _ = _measure(
                    protocol, predicate, "counts", n, rate=RATE, seed=55,
                    model=model,
                )
                rows.append(
                    {
                        "fault_model": model,
                        "n": n,
                        "backend": "counts",
                        "rate": RATE,
                        "bursts": report.fault_bursts,
                        "availability": round(report.availability, 3),
                        "median_repair": report.median_repair_interactions,
                        "seconds": round(elapsed, 3),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E21n_availability_curves",
        rows,
        "E21 nightly: availability vs n on the counts backend "
        f"(rate {RATE}, bursts of {BURST})",
    )
    # Repair is Θ(log n) parallel time against a Θ(1/rate) fault gap, so
    # availability stays away from the floor at every n.
    assert all(row["availability"] > 0.2 for row in rows), rows

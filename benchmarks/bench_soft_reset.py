"""E6 — Soft-reset correctness (Section 3.2, Lemma 6.1).

The paper's second technical contribution: message-system errors on top of
a *correct* ranking must be repaired by a soft reset that (a) never
destroys the ranking and (b) never escalates to a hard reset once
probation has expired.

Measured per trial, from a corrupted-messages configuration with expired
probation timers: whether any hard reset occurred, whether the final
ranking equals the initial one, and the repair time.

Shape to reproduce: hard-reset rate 0, ranking preserved in every trial,
repair within the ``O((n²/r) log n)`` detection envelope.  A control row
with *on-probation* agents shows the opposite: there the protocol is
designed to hard-reset (the error might have survived a previous soft
reset).
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.adversary.initializers import corrupted_messages
from repro.analysis.theory import collision_detection_interactions
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation

N = 32
R = 4
TRIALS = 15


def run_soft_reset_trials(probation_expired: bool, seed_base: int) -> dict[str, object]:
    protocol = ElectLeader(ProtocolParams(n=N, r=R))
    envelope = int(60 * collision_detection_interactions(N, R))
    hard_resets = 0
    preserved = 0
    converged = 0
    times = []
    for trial in range(TRIALS):
        rng = make_rng(derive_seed(seed_base, trial))
        config = corrupted_messages(protocol, rng, corruptions=4)
        for agent in config:
            assert agent.sv is not None
            agent.sv.probation_timer = (
                0 if probation_expired else protocol.params.probation_max
            )
        ranks_before = [agent.rank for agent in config]
        sim = Simulation(protocol, config=config, seed=derive_seed(seed_base + 1, trial))
        saw_hard_reset = []
        sim.observers.append(
            lambda s, i, j: saw_hard_reset.append(True)
            if (s.config[i].role is Role.RESETTING or s.config[j].role is Role.RESETTING)
            else None
        )
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=envelope, check_interval=500
        )
        converged += bool(result.converged)
        hard_resets += bool(saw_hard_reset)
        if result.converged and [a.rank for a in result.config] == ranks_before:
            preserved += 1
        if result.converged:
            times.append(result.interactions)
    return {
        "scenario": "probation_expired" if probation_expired else "on_probation",
        "n": N,
        "r": R,
        "trials": TRIALS,
        "recovered": converged / TRIALS,
        "hard_reset_rate": hard_resets / TRIALS,
        "ranking_preserved_rate": preserved / TRIALS,
        "median_interactions": statistics.median(times) if times else float("nan"),
    }


def test_e6_soft_reset(benchmark, record_table):
    def experiment():
        return [
            run_soft_reset_trials(probation_expired=True, seed_base=6000),
            run_soft_reset_trials(probation_expired=False, seed_base=6200),
        ]

    rows = run_once(benchmark, experiment)
    record_table(
        "E6_soft_reset",
        rows,
        f"E6: soft reset repairs corrupted messages (n={N}, r={R})",
    )

    expired, on_probation = rows
    # Off probation: pure soft-reset path — no hard reset, ranking intact.
    assert expired["recovered"] == 1.0
    assert expired["hard_reset_rate"] == 0.0
    assert expired["ranking_preserved_rate"] == 1.0
    # On probation: the protocol escalates to hard resets by design, and
    # still recovers (via a fresh ranking).
    assert on_probation["recovered"] >= 0.9
    assert on_probation["hard_reset_rate"] > 0.5

"""E7 — Head-to-head against the related-work baselines (Section 2).

Measures clean-start stabilization time for:

* ``ElectLeader_r`` (ours, r = 4),
* Cai–Izumi–Wada (n states, ``O(n²)`` parallel time),
* the Burman-style silent SSR (``2^{Θ(n log n)}`` states, ``O(log n)``
  parallel clean-start time; simplified detection per DESIGN.md §3),
* pairwise elimination (non-self-stabilizing 2-state calibration).

Shapes to reproduce (the paper's positioning):

* CIW is the slowest by a growing factor (quadratic-plus growth);
* the name-broadcast baseline and ours are both ``n·polylog`` from clean
  starts; ours pays a constant-factor premium for full self-stabilization
  machinery at tiny state cost relative to the name-broadcast approach
  (state columns from E1);
* the non-SS calibration protocol sits between, with Θ(n) parallel time.
"""

from __future__ import annotations

from conftest import WORKERS, run_once

from repro.analysis.theory import fit_power_law
from repro.baselines.cai_izumi_wada import CaiIzumiWada
from repro.baselines.nonss_leader import PairwiseElimination
from repro.baselines.silent_ssr import BurmanStyleSSR
from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.scheduler.rng import derive_seed
from repro.sim.trials import run_trials

NS = [16, 32, 64, 96]
TRIALS = 8


def measure_protocol(name: str, n: int) -> dict[str, object]:
    if name == "elect-leader(r=4)":
        protocol = ElectLeader(ProtocolParams(n=n, r=4))
        predicate = protocol.is_safe_configuration
        check = 1000
    elif name == "cai-izumi-wada":
        protocol = CaiIzumiWada(BaselineParams(n=n))
        predicate = protocol.is_silent_configuration
        check = 200
    elif name == "burman-style-ssr":
        protocol = BurmanStyleSSR(BaselineParams(n=n))
        predicate = protocol.ranked_and_correct
        check = 100
    elif name == "pairwise-elimination":
        protocol = PairwiseElimination(n)
        predicate = protocol.is_goal_configuration
        check = 100
    else:  # pragma: no cover - defensive
        raise ValueError(name)
    summary = run_trials(
        protocol,
        predicate,
        n=n,
        trials=TRIALS,
        max_interactions=60_000_000,
        seed=7000 + n,
        check_interval=check,
        label=name,
        workers=WORKERS,
    )
    return {
        "protocol": name,
        "n": n,
        "success": summary.success_rate,
        "median_interactions": summary.median_interactions,
        "median_parallel_time": round(summary.median_time, 1),
    }


PROTOCOLS = [
    "elect-leader(r=4)",
    "burman-style-ssr",
    "cai-izumi-wada",
    "pairwise-elimination",
]


def test_e7_baseline_comparison(benchmark, record_table):
    def experiment():
        return [measure_protocol(name, n) for name in PROTOCOLS for n in NS]

    rows = run_once(benchmark, experiment)
    record_table("E7_baselines", rows, "E7: clean-start stabilization across protocols")

    assert all(row["success"] >= 0.85 for row in rows)
    by_protocol = {
        name: sorted((row for row in rows if row["protocol"] == name), key=lambda r: r["n"])
        for name in PROTOCOLS
    }
    # CIW slowest at the largest n; grows super-linearly in parallel time.
    largest = {name: series[-1] for name, series in by_protocol.items()}
    assert (
        largest["cai-izumi-wada"]["median_interactions"]
        > largest["elect-leader(r=4)"]["median_interactions"]
    )
    ciw_fit = fit_power_law(
        [float(r["n"]) for r in by_protocol["cai-izumi-wada"]],
        [float(r["median_interactions"]) for r in by_protocol["cai-izumi-wada"]],
    )
    ours_fit = fit_power_law(
        [float(r["n"]) for r in by_protocol["elect-leader(r=4)"]],
        [float(r["median_interactions"]) for r in by_protocol["elect-leader(r=4)"]],
    )
    assert ciw_fit.exponent > ours_fit.exponent  # who wins, and increasingly so
    # Name-broadcast ranking is the fastest clean-start protocol.
    assert (
        largest["burman-style-ssr"]["median_interactions"]
        < largest["elect-leader(r=4)"]["median_interactions"]
    )


def test_e7b_adversarial_recovery_comparison(benchmark, record_table):
    """The self-stabilization axis: recovery from scrambled starts.

    Pairwise elimination is omitted — it provably cannot recover (see
    `test_model_check.py`).  Shape to reproduce: all three self-stabilizing
    protocols recover in every trial; CIW's recovery grows ~quadratically
    while ours stays n·polylog; the simplified Burman-style baseline's
    direct-detection recovery sits between (its real history-tree version
    would be fast but super-polynomial-state, per E1)."""
    import statistics

    from repro.adversary.initializers import random_soup
    from repro.scheduler.rng import make_rng

    ns = [16, 32, 64]
    trials = 8

    def measure_recovery(name: str, n: int) -> dict[str, object]:
        times = []
        successes = 0
        for trial in range(trials):
            rng = make_rng(derive_seed(7700 + n, trial))
            if name == "elect-leader(r=4)":
                protocol = ElectLeader(ProtocolParams(n=n, r=4))
                config = random_soup(protocol, rng)
                predicate = protocol.is_safe_configuration
                check = 1000
            elif name == "cai-izumi-wada":
                protocol = CaiIzumiWada(BaselineParams(n=n))
                config = protocol.adversarial_configuration(rng)
                predicate = protocol.is_silent_configuration
                check = 200
            else:
                protocol = BurmanStyleSSR(BaselineParams(n=n))
                config = protocol.adversarial_configuration(rng)
                predicate = protocol.ranked_and_correct
                check = 200
            from repro.sim.simulation import Simulation

            sim = Simulation(protocol, config=config, seed=derive_seed(7800 + n, trial))
            result = sim.run_until(
                predicate, max_interactions=80_000_000, check_interval=check
            )
            if result.converged:
                successes += 1
                times.append(result.interactions)
        return {
            "protocol": name,
            "n": n,
            "success": successes / trials,
            "median_recovery_interactions": statistics.median(times) if times else "-",
        }

    def experiment():
        rows = []
        for name in ("elect-leader(r=4)", "burman-style-ssr", "cai-izumi-wada"):
            for n in ns:
                rows.append(measure_recovery(name, n))
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E7b_recovery_comparison", rows, "E7b: adversarial recovery across protocols")

    assert all(row["success"] >= 0.85 for row in rows)
    at64 = {row["protocol"]: row for row in rows if row["n"] == 64}
    assert (
        float(at64["elect-leader(r=4)"]["median_recovery_interactions"])
        < float(at64["cai-izumi-wada"]["median_recovery_interactions"])
    )

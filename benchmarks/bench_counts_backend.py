"""E20 — Counts-backend speedup gate at the n = 10⁶ frontier.

The counts backend exists so that the paper's asymptotic claims can be
probed where they live: stabilization-vs-``n`` curves at ``n ≥ 10⁶`` for
the ``S ≪ n`` protocol family.  This benchmark is its regression gate,
run by CI's ``bench-perf`` job:

* **E20 (workload gate)** — the *stabilization workload* (run to the
  convergence verdict, checking every ``n/4`` interactions — parallel-time
  resolution ¼) on a table protocol at ``n = 10⁶`` must be **≥ 10×**
  faster on the counts backend than on the array backend.  The headline
  row is the two-way epidemic (Lemma A.2's ``c_epi · n log n`` primitive,
  the engine under every broadcast in ``ElectLeader_r``): both engines
  simulate the same interaction law, but the counts engine applies
  collision-free runs as ``O(S)`` aggregate deltas and evaluates
  convergence on the count vector in ``O(S)``, while the array engine
  pays ``O(n)`` conflict bookkeeping per block and decodes ``n`` state
  objects per convergence check (its contract is config predicates over
  per-agent state — per-agent identity is exactly what it sells; an
  array-side aggregate-predicate fast path would narrow the check gap
  and is noted as follow-up in the ROADMAP).  Raw engine throughput
  (``run_batch`` only, no convergence checks) is reported alongside,
  un-gated: at ``n = 10⁶`` the two engines are within small factors of
  each other there, and the end-to-end experiment — the thing the
  ROADMAP actually runs — is where the representations diverge.

* **E20b (verdict agreement)** — both engines reach the verdict, at
  completion interaction counts within a small factor of each other
  (distribution-equal engines measured at the same check resolution).

Results land in ``benchmarks/results/perf-summary.json`` (merged beside
E18's rows) for the CI artifact.  ``ElectLeader_r`` is asserted to fail
loudly on the counts backend, mirroring E18's array-side assertion.
"""

from __future__ import annotations


from conftest import FAST, run_once, update_perf_summary

from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.obs import get_tracer, perf_counter
from repro.sim.array_backend import ArraySimulation, transition_table_for
from repro.sim.counts_backend import (
    CountsBackendError,
    CountsSimulation,
    goal_counts_predicate,
)
from repro.substrates.epidemics import EpidemicProtocol

#: The acceptance bar (≥ 10×) applies at the full n = 10⁶ configuration;
#: FAST smoke runs at n = 10⁵ with a lenient floor so loaded shared
#: runners don't flake.
N = 100_000 if FAST else 1_000_000
SPEEDUP_FLOOR = 3.0 if FAST else 10.0
#: Convergence-check cadence: ¼ parallel-time resolution, the granularity
#: a stabilization-vs-n curve actually needs.
CHECK_INTERVAL = N // 4
#: Two-way epidemic completion concentrates near n·ln n; 30n is generous.
BUDGET = 30 * N
#: Raw-throughput comparison budget (run_batch only, no checks).
RAW_BUDGET = 500_000 if FAST else 2_000_000


def _epidemic_codes(n: int):
    import numpy

    codes = numpy.zeros(n, dtype=numpy.int64)
    codes[0] = 1  # one infected source
    return codes


def test_e20_counts_backend_speedup(benchmark, record_table):
    def experiment():
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        transition_table_for(protocol)  # built once, cached; excluded from timings

        rows = []
        workload = {}
        for name, build in (
            ("counts", lambda: CountsSimulation(protocol, codes=_epidemic_codes(N), seed=3)),
            ("array", lambda: ArraySimulation(protocol, codes=_epidemic_codes(N), seed=3)),
        ):
            sim = build()
            t0 = perf_counter()
            result = sim.run_until(predicate, max_interactions=BUDGET,
                                   check_interval=CHECK_INTERVAL)
            elapsed = perf_counter() - t0
            workload[name] = (result, elapsed)
            rows.append(
                {
                    "workload": f"epidemic-completion/{name}",
                    "n": N,
                    "converged": result.converged,
                    "interactions": result.interactions,
                    "seconds": round(elapsed, 3),
                }
            )

        # Raw engine throughput, convergence checks excluded (informational).
        loose = LooselyStabilizingLeaderElection(BaselineParams(n=N))
        transition_table_for(loose)
        raw = {}
        for label, protocol_r, factory in (
            ("epidemic", protocol,
             lambda p: CountsSimulation(p, codes=_epidemic_codes(N), seed=5)),
            ("epidemic", protocol,
             lambda p: ArraySimulation(p, codes=_epidemic_codes(N), seed=5)),
            ("loose", loose, lambda p: CountsSimulation(p, n=N, seed=5)),
            ("loose", loose, lambda p: ArraySimulation(p, n=N, seed=5)),
        ):
            sim = factory(protocol_r)
            engine = type(sim).__name__.replace("Simulation", "").lower()
            t0 = perf_counter()
            sim.run_batch(RAW_BUDGET)
            elapsed = perf_counter() - t0
            raw[(label, engine)] = elapsed
            rows.append(
                {
                    "workload": f"raw-batch/{label}/{engine}",
                    "n": N,
                    "converged": "-",
                    "interactions": RAW_BUDGET,
                    "seconds": round(elapsed, 3),
                }
            )
        return rows, workload, raw

    rows, workload, raw = run_once(benchmark, experiment)
    counts_result, counts_s = workload["counts"]
    array_result, array_s = workload["array"]
    speedup = array_s / counts_s if counts_s > 0 else float("inf")
    for row in rows:
        row["speedup_vs_array"] = ""
    rows[0]["speedup_vs_array"] = round(speedup, 2)
    record_table(
        "E20_counts_backend",
        rows,
        f"E20: counts vs array backend (n={N}, stabilization workload "
        f"checked every n/4; raw batches of {RAW_BUDGET})",
    )
    update_perf_summary(
        "E20_counts_backend",
        {
            "experiment": "E20_counts_backend",
            "n": N,
            "fast_mode": FAST,
            "speedup_floor": SPEEDUP_FLOOR,
            "workload_speedup": round(speedup, 2),
            "counts_seconds": round(counts_s, 3),
            "array_seconds": round(array_s, 3),
            "raw_seconds": {
                f"{label}/{engine}": round(value, 3)
                for (label, engine), value in raw.items()
            },
            "rows": rows,
        },
    )

    # ElectLeader_r has no finite encoding: the counts backend must refuse
    # it loudly, never silently fall back to something slower or wrong.
    elect = ElectLeader(ProtocolParams(n=64, r=4))
    try:
        CountsSimulation(elect, n=64, seed=0)
    except CountsBackendError:
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("ElectLeader must be rejected by the counts backend")

    # E20b: same verdict at the same check resolution, completion counts
    # within a small factor (distribution-equal engines).
    assert counts_result.converged and array_result.converged, rows
    ratio = counts_result.interactions / array_result.interactions
    assert 1 / 1.5 < ratio < 1.5, rows

    # E20: the ≥10× workload gate (≥3× in FAST smoke).
    assert speedup >= SPEEDUP_FLOOR, rows


#: Disabled-tracing overhead bar: spans around the hot loop with no trace
#: sink configured must cost <= 2% (plus a small absolute epsilon so the
#: gate doesn't flake on sub-second runs on loaded shared runners).
TRACE_OVERHEAD_LIMIT = 0.02
TRACE_OVERHEAD_EPSILON_S = 0.05
TRACE_OVERHEAD_BATCHES = 32


def test_e20_tracing_disabled_overhead(benchmark, record_table, monkeypatch):
    """Zero-overhead claim, measured: the E20 raw counts workload wrapped
    in disabled-tracer spans pays <= 2% over the unwrapped drive (min of
    3 runs each — the null tracer is one attribute check per span)."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    tracer = get_tracer()
    assert not tracer.enabled

    protocol = EpidemicProtocol()
    per_batch = max(1, RAW_BUDGET // TRACE_OVERHEAD_BATCHES)

    def drive(spanned: bool) -> float:
        sim = CountsSimulation(protocol, codes=_epidemic_codes(N), seed=11)
        t0 = perf_counter()
        if spanned:
            for _ in range(TRACE_OVERHEAD_BATCHES):
                with tracer.span("bench.batch"):
                    sim.run_batch(per_batch)
        else:
            for _ in range(TRACE_OVERHEAD_BATCHES):
                sim.run_batch(per_batch)
        return perf_counter() - t0

    def experiment():
        plain = min(drive(False) for _ in range(3))
        spanned = min(drive(True) for _ in range(3))
        return plain, spanned

    plain_s, spanned_s = run_once(benchmark, experiment)
    overhead = spanned_s / plain_s - 1 if plain_s > 0 else 0.0
    rows = [
        {
            "workload": f"raw-batch/epidemic/counts{suffix}",
            "n": N,
            "interactions": TRACE_OVERHEAD_BATCHES * per_batch,
            "seconds": round(seconds, 3),
        }
        for suffix, seconds in (("", plain_s), ("+null-spans", spanned_s))
    ]
    record_table(
        "E20_trace_overhead",
        rows,
        f"E20: disabled-tracing overhead (limit {TRACE_OVERHEAD_LIMIT:.0%}, "
        f"measured {overhead:+.1%})",
    )
    update_perf_summary(
        "E20_trace_overhead",
        {
            "experiment": "E20_trace_overhead",
            "n": N,
            "fast_mode": FAST,
            "overhead_limit": TRACE_OVERHEAD_LIMIT,
            "overhead": round(overhead, 4),
            "plain_seconds": round(plain_s, 3),
            "spanned_seconds": round(spanned_s, 3),
        },
    )
    assert spanned_s <= plain_s * (1 + TRACE_OVERHEAD_LIMIT) + TRACE_OVERHEAD_EPSILON_S, (
        plain_s,
        spanned_s,
    )

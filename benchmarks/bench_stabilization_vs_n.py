"""E2 — Stabilization time vs population size (Theorem 1.1's time bound).

Measures the interactions for ``ElectLeader_r`` to reach the safe set from
a clean (awakening) configuration, sweeping ``n`` at fixed ``r``.

Shape to reproduce: growth ``Θ((n²/r)·log n)`` — the log-log fit of
median interactions vs ``n`` should land near exponent 2 (up to the log
factor), and the measured/predicted ratio should stay within a constant
band across the sweep.
"""

from __future__ import annotations

from conftest import FAST, WORKERS, fast_scaled, run_once

from repro.analysis.theory import (
    elect_leader_interactions,
    fit_power_law,
    predicted_stabilization_interactions,
    ratio_spread,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.sim.trials import run_trials

NS = fast_scaled([16, 24, 32, 48, 64, 96], [16, 24, 32])
R = 4
TRIALS = fast_scaled(10, 4)


def test_e2_stabilization_vs_n(benchmark, record_table):
    def experiment():
        rows = []
        for n in NS:
            protocol = ElectLeader(ProtocolParams(n=n, r=R))
            summary = run_trials(
                protocol,
                protocol.is_safe_configuration,
                n=n,
                trials=TRIALS,
                max_interactions=20_000_000,
                seed=1000 + n,
                check_interval=max(200, n * n // 8),
                label=f"n={n}",
                workers=WORKERS,
            )
            shape = elect_leader_interactions(n, R)
            concrete = predicted_stabilization_interactions(protocol.params)
            rows.append(
                {
                    "n": n,
                    "r": R,
                    "trials": summary.trials,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 1),
                    "p95_parallel_time": round(summary.p95_time, 1),
                    "paper_shape_(n^2/r)ln_n": round(shape),
                    "predicted_concrete": round(concrete),
                    "ratio_to_concrete": round(summary.median_interactions / concrete, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E2_stabilization_vs_n", rows, f"E2: ElectLeader_r stabilization vs n (r={R})")

    assert all(row["success"] >= 0.9 for row in rows)
    if FAST:  # smoke mode: the trimmed sweep only supports the success gate
        return
    medians = [float(row["median_interactions"]) for row in rows]
    fit = fit_power_law([float(row["n"]) for row in rows], medians)
    # Θ(n² log n) with the small-n Θ(n log n) countdown floor → fitted
    # exponent between quadratic-ish and cubic; reject linear growth.
    assert 1.4 < fit.exponent < 2.9, fit
    # Against the concrete countdown-based prediction the ratio is flat.
    predicted = [float(row["predicted_concrete"]) for row in rows]
    assert ratio_spread(medians, predicted) < 2.5
    # In the formula-dominated range (n >= 48 at r=4) the paper's bare
    # (n²/r)·log n shape also holds with a flat ratio.
    large = [row for row in rows if int(row["n"]) >= 48]
    assert ratio_spread(
        [float(row["median_interactions"]) for row in large],
        [float(row["paper_shape_(n^2/r)ln_n"]) for row in large],
    ) < 2.0

"""E2 — Stabilization time vs population size (Theorem 1.1's time bound).

Measures the interactions for ``ElectLeader_r`` to reach the safe set from
a clean (awakening) configuration, sweeping ``n`` at fixed ``r``.

Shape to reproduce: growth ``Θ((n²/r)·log n)`` — the log-log fit of
median interactions vs ``n`` should land near exponent 2 (up to the log
factor), and the measured/predicted ratio should stay within a constant
band across the sweep.

E2b (nightly full-bench only, ``REPRO_BENCH_NIGHTLY=1``) extends the
curve family to the ``n ≥ 10⁶`` frontier on the counts backend: the
finite-state primitives that *compose* ``ElectLeader_r`` — the epidemic
(Lemma A.2) and the standalone reset epidemic (Appendix C) — swept to
population sizes only the count-vector representation reaches, with the
``n log n`` shape asserted on the epidemic decade range.  The reset rows
reach ``n = 10⁶`` too since the protocol's closed-form transition table
replaced the generic ``S²`` enumeration (which capped them at ``10⁴``).
"""

from __future__ import annotations

import os

import pytest

from conftest import FAST, WORKERS, fast_scaled, run_once

from repro.analysis.theory import (
    elect_leader_interactions,
    fit_power_law,
    predicted_stabilization_interactions,
    ratio_spread,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.sim.initial_state import CodeArray
from repro.sim.trials import run_trials

NS = fast_scaled([16, 24, 32, 48, 64, 96], [16, 24, 32])
R = 4
TRIALS = fast_scaled(10, 4)

#: E2b runs only in the scheduled nightly workflow: its n = 10⁶ rows are
#: minutes-scale and belong with the full experiment budgets.
NIGHTLY = os.environ.get("REPRO_BENCH_NIGHTLY", "") == "1"


def test_e2_stabilization_vs_n(benchmark, record_table):
    def experiment():
        rows = []
        for n in NS:
            protocol = ElectLeader(ProtocolParams(n=n, r=R))
            summary = run_trials(
                protocol,
                protocol.is_safe_configuration,
                n=n,
                trials=TRIALS,
                max_interactions=20_000_000,
                seed=1000 + n,
                check_interval=max(200, n * n // 8),
                label=f"n={n}",
                workers=WORKERS,
            )
            shape = elect_leader_interactions(n, R)
            concrete = predicted_stabilization_interactions(protocol.params)
            rows.append(
                {
                    "n": n,
                    "r": R,
                    "trials": summary.trials,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 1),
                    "p95_parallel_time": round(summary.p95_time, 1),
                    "paper_shape_(n^2/r)ln_n": round(shape),
                    "predicted_concrete": round(concrete),
                    "ratio_to_concrete": round(summary.median_interactions / concrete, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E2_stabilization_vs_n", rows, f"E2: ElectLeader_r stabilization vs n (r={R})")

    assert all(row["success"] >= 0.9 for row in rows)
    if FAST:  # smoke mode: the trimmed sweep only supports the success gate
        return
    medians = [float(row["median_interactions"]) for row in rows]
    fit = fit_power_law([float(row["n"]) for row in rows], medians)
    # Θ(n² log n) with the small-n Θ(n log n) countdown floor → fitted
    # exponent between quadratic-ish and cubic; reject linear growth.
    assert 1.4 < fit.exponent < 2.9, fit
    # Against the concrete countdown-based prediction the ratio is flat.
    predicted = [float(row["predicted_concrete"]) for row in rows]
    assert ratio_spread(medians, predicted) < 2.5
    # In the formula-dominated range (n >= 48 at r=4) the paper's bare
    # (n²/r)·log n shape also holds with a flat ratio.
    large = [row for row in rows if int(row["n"]) >= 48]
    assert ratio_spread(
        [float(row["median_interactions"]) for row in large],
        [float(row["paper_shape_(n^2/r)ln_n"]) for row in large],
    ) < 2.0


@pytest.mark.skipif(not NIGHTLY, reason="nightly full-bench only (REPRO_BENCH_NIGHTLY=1)")
def test_e2b_table_protocol_stabilization_vs_n_counts(benchmark, record_table):
    """Counts-backend stabilization curves up to n = 10⁶ (nightly only)."""
    from repro.core.propagate_reset import ResetEpidemicProtocol
    from repro.sim.counts_backend import goal_counts_predicate
    from repro.substrates.epidemics import EpidemicProtocol

    import numpy

    def seeded_codes(n, planted_code, sources=1):
        # Encoded starts keep trial specs O(n) ints (no state objects
        # are materialized or pickled at n = 10⁶).
        codes = numpy.zeros(n, dtype=numpy.int64)
        codes[:sources] = planted_code
        return codes

    def experiment():
        rows = []
        # Epidemic completion: Lemma A.2's c_epi · n log n, swept across
        # three decades to the counts backend's home turf.
        epidemic = EpidemicProtocol()
        for n in (10_000, 100_000, 1_000_000):
            summary = run_trials(
                epidemic,
                goal_counts_predicate(epidemic),
                n=n,
                trials=5,
                max_interactions=30 * n,
                seed=2_000 + n,
                check_interval=max(1, n // 8),
                init=lambda index, n=n: CodeArray(seeded_codes(n, 1)),
                label=f"epidemic/n={n}",
                workers=WORKERS,
                backend="counts",
            )
            rows.append(
                {
                    "protocol": "epidemic",
                    "n": n,
                    "backend": "counts",
                    "trials": summary.trials,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 2),
                }
            )
        # Reset epidemic (Appendix C): the deterministic finite-state core
        # mechanism.  Its closed-form transition table (no S² Python δ
        # enumeration) lifts the old n = 10⁴ cap: the reset curve now
        # reaches the same n = 10⁶ frontier as the plain epidemic.
        for n in (10_000, 100_000, 1_000_000):
            reset = ResetEpidemicProtocol(ProtocolParams(n=n, r=4))
            triggered = reset.encode_state(reset.triggered_state())
            summary = run_trials(
                reset,
                goal_counts_predicate(reset),
                n=n,
                trials=5 if n < 1_000_000 else 3,
                max_interactions=400 * n,
                seed=3_000 + n,
                check_interval=max(1, n // 8),
                init=lambda index, n=n, code=triggered: (
                    CodeArray(seeded_codes(n, code))
                ),
                label=f"reset/n={n}",
                workers=WORKERS,
                backend="counts",
            )
            rows.append(
                {
                    "protocol": "reset_epidemic",
                    "n": n,
                    "backend": "counts",
                    "trials": summary.trials,
                    "success": summary.success_rate,
                    "median_interactions": summary.median_interactions,
                    "median_parallel_time": round(summary.median_time, 2),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    record_table(
        "E2b_stabilization_vs_n_counts",
        rows,
        "E2b: table-protocol stabilization vs n on the counts backend (nightly)",
    )
    assert all(row["success"] == 1.0 for row in rows)
    epidemic_rows = [row for row in rows if row["protocol"] == "epidemic"]
    fit = fit_power_law(
        [float(row["n"]) for row in epidemic_rows],
        [float(row["median_interactions"]) for row in epidemic_rows],
    )
    # n log n over three decades fits a power law with exponent slightly
    # above 1; reject quadratic blow-ups and sublinear artifacts alike.
    assert 0.9 < fit.exponent < 1.45, fit

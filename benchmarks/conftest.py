"""Shared harness for the experiment benchmarks.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md §4
(the per-experiment index).  Conventions:

* every experiment is a single pytest-benchmark measurement
  (``benchmark.pedantic(..., rounds=1)`` — the experiment itself runs many
  internal trials, so re-running it for timing statistics would be waste);
* the experiment's output table — the paper-shaped rows — is written to
  ``benchmarks/results/<experiment>.txt`` and echoed to the terminal
  (visible with ``-s``; always on disk either way);
* assertions on the *shape* of the results (who wins, growth exponents)
  make the benchmarks double as coarse regression tests.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
from typing import Sequence

import pytest

from repro.sim.trials import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Write (and echo) an experiment's result table."""

    def _record(experiment: str, rows: Sequence[dict[str, object]], title: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_table(list(rows), title=title)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _record


def run_once(benchmark, fn):
    """Run the experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

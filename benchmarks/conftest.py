"""Shared harness for the experiment benchmarks.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md §4
(the per-experiment index).  Conventions:

* every experiment is a single pytest-benchmark measurement
  (``benchmark.pedantic(..., rounds=1)`` — the experiment itself runs many
  internal trials, so re-running it for timing statistics would be waste);
* the experiment's output table — the paper-shaped rows — is written to
  ``benchmarks/results/<experiment>.txt`` and echoed to the terminal
  (visible with ``-s``; always on disk either way);
* assertions on the *shape* of the results (who wins, growth exponents)
  make the benchmarks double as coarse regression tests.

Run with::

    pytest benchmarks/ --benchmark-only

Three environment knobs control the execution substrate (see
:mod:`repro.sim.parallel` and :mod:`repro.sim.array_backend`):

* ``REPRO_BENCH_WORKERS`` — worker processes for trial fan-out in every
  ``run_trials``-based experiment (unset or ``0`` = one per CPU; ``1`` =
  sequential).  Results are bit-identical for any worker count; only
  wall-clock changes.
* ``REPRO_BENCH_FAST=1`` — CI smoke mode: experiments that opt in via
  :func:`fast_scaled` trim their sweeps to minutes-scale budgets.
* ``REPRO_BENCH_BACKEND`` — default execution engine (any registered
  backend: ``object`` / ``array`` / ``counts``) for every
  ``run_trials``/``run_until`` call that does not pin one explicitly.
  Only finite-state protocols run on the vectorized engines;
  ``ElectLeader_r`` experiments fail fast under them by design, so set
  it per-invocation, not globally.  ``bench_array_backend.py`` and
  ``bench_counts_backend.py`` compare engines explicitly regardless of
  this knob.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Sequence, TypeVar

import pytest

from repro.sim.trials import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def update_perf_summary(experiment: str, payload: dict) -> None:
    """Merge one experiment's summary into ``results/perf-summary.json``.

    The file is a dict keyed by experiment name so each perf gate (the
    array backend's E18, the counts backend's E20, future ones) owns a
    slice without clobbering the others — CI uploads the whole file as
    one artifact.  A pre-merge single-experiment file is migrated under
    its ``experiment`` key; an unreadable file is rebuilt.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "perf-summary.json"
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except ValueError:
            loaded = None
        if isinstance(loaded, dict):
            data = loaded
    if "experiment" in data:  # legacy single-experiment layout
        data = {str(data["experiment"]): data}
    data[experiment] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

#: Worker processes for run_trials fan-out (0/unset = one per CPU).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None

#: CI smoke mode — trimmed sweeps for pre-merge engine-regression checks.
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"

T = TypeVar("T")


def fast_scaled(value: T, fast_value: T) -> T:
    """The experiment parameter, or its trimmed variant in smoke mode."""
    return fast_value if FAST else value


@pytest.fixture
def record_table():
    """Write (and echo) an experiment's result table."""

    def _record(experiment: str, rows: Sequence[dict[str, object]], title: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_table(list(rows), title=title)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _record


def run_once(benchmark, fn):
    """Run the experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

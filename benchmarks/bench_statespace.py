"""E1 — State-space / bit-complexity tables (Figures 1-4, Theorem 1.1).

Regenerates the paper's Section 1-2 comparison: the bit complexity of
``ElectLeader_r`` across the trade-off range against the CIW baseline, the
simulable Burman-style baseline, and the *quoted* Sublinear-Time-SSR
bound, plus the full trade-off frontier at one population size.

Shape to reproduce: ours is ``O(r² log n)`` bits — polynomial at every
``r`` — while the quoted time-optimal comparator is super-polynomial
(``n^{Θ(log n)}``); at the time-optimal end ours wins by orders of
magnitude, and at ``r = log² n`` ours is sub-exponential (the paper's
open-problem resolution).
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis.statespace import (
    comparison_table,
    elect_leader_bits,
    theorem_bound_bits,
    tradeoff_frontier,
)


def test_e1_bit_complexity_table(benchmark, record_table):
    ns = [16, 64, 256, 1024, 4096, 16384]

    def experiment():
        return comparison_table(ns)

    rows = run_once(benchmark, experiment)
    record_table("E1_bit_complexity", rows, "E1: bit complexity (log2 #states) per protocol")

    # Shape assertions (Theorem 1.1 + Section 1 claims):
    for row in rows:
        n = int(row["n"])
        # Time-optimal regime: ours sub-cubic vs quoted super-polynomial.
        if n >= 64:
            assert float(row["ours_rmax_bits"]) < float(row["burman_quoted_bits"])
        # r = 1 regime: polynomially many states (O(log n) bits growth).
        assert float(row["ours_r1_bits"]) < 40 * math.log2(n) + 200
    # Sub-exponential at r = log² n (the open-problem regime): bit count is
    # polylog(n), so bits/n must shrink as n grows — the checkable finite-n
    # signature of 2^{o(n)} states.  Absolute polylog values are inflated by
    # our unoptimized constants (DESIGN.md §3), so we assert the shape.
    large = [row for row in rows if int(row["n"]) >= 1024]
    normalized = [float(row["ours_rlog2_bits"]) / int(row["n"]) for row in large]
    assert normalized == sorted(normalized, reverse=True), normalized
    # ... and it stays below the quoted super-polynomial comparator.
    for row in large:
        assert float(row["ours_rlog2_bits"]) < float(row["burman_quoted_bits"])


def test_e1_tradeoff_frontier(benchmark, record_table):
    def experiment():
        return tradeoff_frontier(1024)

    rows = run_once(benchmark, experiment)
    record_table(
        "E1_tradeoff_frontier",
        rows,
        "E1b: space-time frontier at n=1024 (ours per r vs quoted SSR per H)",
    )
    fastest = min(rows, key=lambda row: float(row["ours_parallel_time"]))
    assert float(fastest["ours_bits"]) * 1e6 < float(fastest["their_bits_quoted"])


def test_e1_theorem_envelope(benchmark, record_table):
    """Every computed bit count sits inside c·r²·log₂(n) + lower-order."""

    def experiment():
        rows = []
        for n in (32, 128, 512, 2048):
            for r in (1, 2, max(2, n // 64), n // 2):
                bits = elect_leader_bits(n, r)
                envelope = theorem_bound_bits(n, r, constant=60.0) + 20 * math.log2(n) + 200
                rows.append(
                    {
                        "n": n,
                        "r": r,
                        "bits": round(bits, 1),
                        "envelope_60_r2_log_n": round(envelope, 1),
                        "within": bits < envelope,
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E1_theorem_envelope", rows, "E1c: Theorem 1.1 envelope check")
    assert all(row["within"] for row in rows)

"""E5 — Collision-detection latency (Lemma E.1(b), Lemmas E.3/E.7).

Isolates ``DetectCollision_r``: plant ``k`` duplicated ranks into an
otherwise correct ranking with clean DC states, and measure interactions
until some agent raises ⊤.

Shapes to reproduce:

* detection always succeeds within the ``O((n²/r)·log n)`` envelope;
* more duplicates → faster detection (Lemma E.3's direct-meeting regime
  kicks in), with the single-duplicate case — the message-mechanism's
  raison d'être — still far below the ``Ω(n²)`` direct-meeting cost that
  motivated the messages in the first place (Section 3.1);
* larger r → faster detection at fixed n.
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.analysis.theory import collision_detection_interactions
from repro.core.detect_collision import DetectCollisionProtocol
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation

N = 48
TRIALS = 15


def duplicate_config(protocol: DetectCollisionProtocol, duplicates: int, seed: int):
    """Correct ranking with ``duplicates`` agents overwritten by rank+1."""
    rng = make_rng(seed)
    config = [protocol.state_for_rank(rank) for rank in range(1, protocol.n + 1)]
    victims = rng.sample(range(protocol.n - 1), duplicates)
    for index in victims:
        config[index] = protocol.state_for_rank(config[index].rank + 1)
    return config


def measure(n: int, r: int, duplicates: int, seed_base: int) -> dict[str, object]:
    params = ProtocolParams(n=n, r=r)
    protocol = DetectCollisionProtocol(params)
    envelope = int(60 * collision_detection_interactions(n, r))
    times = []
    successes = 0
    for trial in range(TRIALS):
        config = duplicate_config(protocol, duplicates, derive_seed(seed_base, trial))
        sim = Simulation(protocol, config=config, seed=derive_seed(seed_base + 1, trial))
        result = sim.run_until(
            protocol.error_detected, max_interactions=envelope, check_interval=20
        )
        if result.converged:
            successes += 1
            times.append(result.interactions)
    return {
        "n": n,
        "r": r,
        "duplicates": duplicates,
        "success": successes / TRIALS,
        "median_interactions": statistics.median(times) if times else float("nan"),
        "p95_interactions": sorted(times)[int(0.95 * (len(times) - 1))] if times else float("nan"),
        "predicted_(n^2/r)ln_n": round(collision_detection_interactions(n, r)),
    }


def test_e5_detection_latency(benchmark, record_table):
    def experiment():
        rows = []
        for r in (2, 4, 8):
            for duplicates in (1, max(2, r), N // 4):
                rows.append(measure(N, r, duplicates, seed_base=5000 + 100 * r + duplicates))
        return rows

    rows = run_once(benchmark, experiment)
    record_table("E5_collision_detection", rows, f"E5: time to ⊤ with k duplicate ranks (n={N})")

    assert all(row["success"] == 1.0 for row in rows)
    # More duplicates detect (weakly) faster at fixed r.
    for r in (2, 4, 8):
        sweep = [row for row in rows if row["r"] == r]
        sweep.sort(key=lambda row: row["duplicates"])
        assert sweep[0]["median_interactions"] >= sweep[-1]["median_interactions"] * 0.8
    # Larger r detects faster in the single-duplicate regime.
    singles = {
        row["r"]: float(row["median_interactions"]) for row in rows if row["duplicates"] == 1
    }
    assert singles[8] < singles[2] * 1.2
